(* Crash-recovery tests (the paper's fault-tolerance model, §IV). *)

let params = { Workload.Microbench.tables = 4; rows = 100; update_types = 4 }

let config =
  {
    Core.Config.default with
    replicas = 3;
    seed = 77;
    record_log = true;
    gc_interval_ms = 0.0;
    hiccup_interval_ms = 0.0;
  }

let make_cluster mode =
  Core.Cluster.create ~config ~mode
    ~schemas:(Workload.Microbench.schemas params)
    ~load:(Workload.Microbench.load params)
    ()

let test_crash_then_recover_catches_up () =
  let cluster = make_cluster Core.Consistency.Coarse in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  (* Crash replica 2 at t=500ms, recover at t=1500ms. *)
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 500.0;
      Core.Cluster.crash_replica cluster 2;
      Sim.Process.sleep engine 1_000.0;
      Core.Cluster.recover_replica cluster 2);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:3_000.0;
  (* After the run, the recovered replica must have caught up with the
     certifier's history (allowing only for in-flight tail). *)
  let certified = Core.Certifier.version (Core.Cluster.certifier cluster) in
  let recovered = Core.Replica.v_local (Core.Cluster.replica cluster 2) in
  Alcotest.(check bool)
    (Printf.sprintf "recovered replica caught up (v_local %d, certified %d)" recovered
       certified)
    true
    (certified - recovered < 20);
  Alcotest.(check bool) "progress was made" true (certified > 100);
  Alcotest.(check bool) "replica is live again" true
    (not (Core.Replica.is_crashed (Core.Cluster.replica cluster 2)))

let test_crash_preserves_strong_consistency () =
  let cluster = make_cluster Core.Consistency.Coarse in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 600.0;
      Core.Cluster.crash_replica cluster 1;
      Sim.Process.sleep engine 800.0;
      Core.Cluster.recover_replica cluster 1);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:3_000.0;
  let log = Core.Cluster.records cluster in
  Alcotest.(check bool) "committed through the failure" true (List.length log > 100);
  (match Check.Runlog.strong_consistency log with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "strong consistency violated across crash: %s"
      (Format.asprintf "%a" Check.Runlog.pp_violation v));
  match Check.Runlog.first_committer_wins log with
  | [] -> ()
  | _ -> Alcotest.fail "write-write conflict slipped through during failure"

let test_crash_during_eager_does_not_wedge () =
  (* The certifier drops a crashed replica from the eager ack set, so
     commits keep completing. *)
  let cluster = make_cluster Core.Consistency.Eager in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 500.0;
      Core.Cluster.crash_replica cluster 0);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:2_000.0;
  let metrics = Core.Cluster.metrics cluster in
  Alcotest.(check bool) "eager cluster kept committing" true
    (Core.Metrics.committed metrics > 100)

let test_client_requests_survive_crash () =
  (* Transactions in flight on the crashed replica abort; clients retry
     and eventually succeed on the survivors. *)
  let cluster = make_cluster Core.Consistency.Session in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 500.0;
      Core.Cluster.crash_replica cluster 2);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:2_000.0;
  let metrics = Core.Cluster.metrics cluster in
  Alcotest.(check bool) "throughput continued" true (Core.Metrics.committed metrics > 100);
  Alcotest.(check int) "no client gave up" 0 (Core.Metrics.retry_exhausted metrics)

let test_recovery_replays_missed_writesets () =
  (* Direct unit check of the replay path: commit a known update while a
     replica is down, recover, and read the value there. *)
  let cluster = make_cluster Core.Consistency.Coarse in
  let engine = Core.Cluster.engine cluster in
  let update =
    Core.Transaction.make ~profile:"upd"
      [
        Storage.Query.Update_key
          {
            table = "t00";
            key = [| Storage.Value.Int 5 |];
            set = [ ("val", Storage.Expr.i 4242) ];
          };
      ]
  in
  Sim.Process.spawn engine (fun () ->
      Core.Cluster.crash_replica cluster 2;
      (match Core.Cluster.submit cluster ~sid:0 update with
      | Core.Transaction.Committed _ -> ()
      | Core.Transaction.Aborted _ -> Alcotest.fail "update aborted");
      Core.Cluster.recover_replica cluster 2);
  Sim.Engine.run engine;
  let db = Core.Replica.database (Core.Cluster.replica cluster 2) in
  Alcotest.(check int) "replica 2 replayed the missed commit" 1
    (Storage.Database.version db);
  match
    Storage.Table.read (Storage.Database.table db "t00") ~key:[| Storage.Value.Int 5 |]
      ~at:1
  with
  | Some row -> Alcotest.(check int) "value replayed" 4242 (Storage.Value.as_int row.(1))
  | None -> Alcotest.fail "row missing after replay"

let test_state_transfer_after_log_prune () =
  (* Crash a replica, let the cluster run long past the certifier's
     pruned log horizon, then recover: recovery must fall back to a
     checkpoint state transfer and still converge. *)
  let config =
    { config with Core.Config.gc_interval_ms = 200.0; gc_window = 50 }
  in
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Coarse
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 300.0;
      Core.Cluster.crash_replica cluster 2;
      Sim.Process.sleep engine 2_000.0;
      (* By now the log horizon is far beyond replica 2's version. *)
      let certifier = Core.Cluster.certifier cluster in
      let stale = Core.Replica.v_local (Core.Cluster.replica cluster 2) in
      Alcotest.(check bool) "log was pruned past the outage" true
        (Core.Certifier.log_base certifier > stale);
      Alcotest.(check bool) "log replay unavailable" true
        (Core.Certifier.writesets_from certifier stale = None);
      Core.Cluster.recover_replica cluster 2);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:4_000.0;
  let r2 = Core.Cluster.replica cluster 2 in
  Alcotest.(check bool) "replica 2 live" true (not (Core.Replica.is_crashed r2));
  let certified = Core.Certifier.version (Core.Cluster.certifier cluster) in
  Alcotest.(check bool)
    (Printf.sprintf "caught up after state transfer (v%d of v%d)"
       (Core.Replica.v_local r2) certified)
    true
    (certified - Core.Replica.v_local r2 < 20)

let test_certifier_failover () =
  (* Crash the certifier primary under load; update transactions stall,
     the standby takes over with no lost decisions, and strong
     consistency holds across the failover. *)
  let config = { config with Core.Config.certifier_standbys = 2 } in
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Coarse
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  let version_at_crash = ref 0 in
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 500.0;
      version_at_crash := Core.Certifier.version (Core.Cluster.certifier cluster);
      Core.Cluster.crash_certifier cluster;
      Sim.Process.sleep engine 400.0;
      (* Only certifications already in flight at the crash may still be
         decided (at most one per client); new requests must queue. *)
      let during = Core.Certifier.version (Core.Cluster.certifier cluster) in
      Alcotest.(check bool)
        (Printf.sprintf "only in-flight decisions during outage (%d -> %d)"
           !version_at_crash during)
        true
        (during - !version_at_crash <= 10);
      Core.Cluster.failover_certifier cluster);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:3_000.0;
  let certifier = Core.Cluster.certifier cluster in
  Alcotest.(check int) "one failover" 1 (Core.Certifier.failovers certifier);
  Alcotest.(check bool) "commits resumed after failover" true
    (Core.Certifier.version certifier > !version_at_crash + 100);
  let log = Core.Cluster.records cluster in
  Alcotest.(check int) "strong consistency across certifier failover" 0
    (List.length (Check.Runlog.strong_consistency log));
  Alcotest.(check int) "no write-write conflicts slipped through" 0
    (List.length (Check.Runlog.first_committer_wins log))

let test_certifier_crash_requires_standby () =
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Coarse
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  Alcotest.(check bool) "crash without standby rejected" true
    (try
       Core.Cluster.crash_certifier cluster;
       false
     with Invalid_argument _ -> true)

let test_replicas_converge_to_same_state () =
  (* After a loaded run drains, all replicas must hold identical data:
     compare content fingerprints at the lowest common version. *)
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Session
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:2_000.0;
  (* Let in-flight refresh propagation drain: run with no new client
     events beyond the horizon is not possible (closed loop), so compare
     at the minimum applied version across replicas. *)
  let min_v = ref max_int in
  for i = 0 to config.Core.Config.replicas - 1 do
    min_v := min !min_v (Core.Replica.v_local (Core.Cluster.replica cluster i))
  done;
  Alcotest.(check bool) "made progress" true (!min_v > 100);
  let reference =
    Storage.Database.fingerprint
      (Core.Replica.database (Core.Cluster.replica cluster 0))
      ~at:!min_v
  in
  for i = 1 to config.Core.Config.replicas - 1 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d converged at v%d" i !min_v)
      reference
      (Storage.Database.fingerprint
         (Core.Replica.database (Core.Cluster.replica cluster i))
         ~at:!min_v)
  done

let suites =
  [
    ( "faults",
      [
        Alcotest.test_case "crash + recover catches up" `Quick
          test_crash_then_recover_catches_up;
        Alcotest.test_case "strong consistency across crash" `Quick
          test_crash_preserves_strong_consistency;
        Alcotest.test_case "eager does not wedge on crash" `Quick
          test_crash_during_eager_does_not_wedge;
        Alcotest.test_case "clients survive crash via retries" `Quick
          test_client_requests_survive_crash;
        Alcotest.test_case "recovery replays missed writesets" `Quick
          test_recovery_replays_missed_writesets;
        Alcotest.test_case "state transfer after log prune" `Quick
          test_state_transfer_after_log_prune;
        Alcotest.test_case "certifier failover" `Quick test_certifier_failover;
        Alcotest.test_case "certifier crash requires standby" `Quick
          test_certifier_crash_requires_standby;
        Alcotest.test_case "replicas converge" `Quick test_replicas_converge_to_same_state;
      ] );
  ]

(* Crash-recovery walkthrough: a replica fails under load, the cluster
   keeps serving clients, and the replica replays the certifier log on
   recovery.

   Run with: dune exec examples/failover.exe *)

let params = { Workload.Microbench.tables = 8; rows = 1_000; update_types = 4 }

let config =
  {
    Core.Config.default with
    replicas = 4;
    seed = 5;
    record_log = true;
    gc_interval_ms = 0.0;
  }

let () =
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Coarse
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:20 ~first_sid:0 (Workload.Microbench.workload params);
  let snapshot label =
    Printf.printf "%6.0f ms  %-18s" (Sim.Engine.now engine) label;
    for i = 0 to 3 do
      let r = Core.Cluster.replica cluster i in
      Printf.printf "  r%d: v%-6d%s" i (Core.Replica.v_local r)
        (if Core.Replica.is_crashed r then " (down)" else "")
    done;
    Printf.printf "  certified: v%d\n%!"
      (Core.Certifier.version (Core.Cluster.certifier cluster))
  in
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 1_000.0;
      snapshot "steady state";
      Core.Cluster.crash_replica cluster 3;
      snapshot "replica 3 crashes";
      Sim.Process.sleep engine 2_000.0;
      snapshot "2s of outage";
      Core.Cluster.recover_replica cluster 3;
      snapshot "recovery starts";
      Sim.Process.sleep engine 500.0;
      snapshot "after 500ms";
      Sim.Process.sleep engine 1_500.0;
      snapshot "after 2s");
  Core.Cluster.run_for cluster ~warmup_ms:500.0 ~measure_ms:5_000.0;
  let m = Core.Cluster.metrics cluster in
  Printf.printf "\nthroughput across the failure: %.0f TPS, aborts %.2f%%\n"
    (Core.Metrics.throughput_tps m)
    (100.0 *. Core.Metrics.abort_rate m);
  let log = Core.Cluster.records cluster in
  Printf.printf "strong-consistency violations across crash+recovery: %d (of %d txns)\n"
    (List.length (Check.Runlog.strong_consistency log))
    (List.length log)

examples/failover.ml: Check Core List Printf Sim Workload

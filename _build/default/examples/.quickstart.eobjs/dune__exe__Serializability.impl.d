examples/serializability.ml: Check Format List Printf Workload

examples/failover.mli:

examples/bookstore.ml: Check Core List Printf Workload

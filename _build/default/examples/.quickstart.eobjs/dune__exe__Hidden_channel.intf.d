examples/hidden_channel.mli:

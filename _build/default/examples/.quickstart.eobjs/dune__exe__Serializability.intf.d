examples/serializability.mli:

examples/quickstart.mli:

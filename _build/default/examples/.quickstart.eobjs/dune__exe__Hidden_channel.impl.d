examples/hidden_channel.ml: Core List Printf Sim Storage Util

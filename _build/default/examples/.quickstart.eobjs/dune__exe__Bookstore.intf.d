examples/bookstore.mli:

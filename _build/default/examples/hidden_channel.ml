(* The paper's motivating example (§I): Agent A executes a trade on
   behalf of Agent B and notifies B through a hidden channel (outside the
   database). B then queries the database — possibly hitting a different
   replica — and must observe the trade.

   Under session consistency, B (a different session!) can read stale
   data. Under the lazy coarse-grained configuration, strong consistency
   holds and B always sees A's committed trade.

   Run with: dune exec examples/hidden_channel.exe *)

let trades_schema =
  Storage.Schema.make ~name:"trades"
    ~columns:
      [ ("account", Storage.Value.Tint); ("shares", Storage.Value.Tint) ]
    ~key:[ "account" ] ()

let config =
  {
    Core.Config.default with
    replicas = 4;
    seed = 2026;
    gc_interval_ms = 0.0;
    (* Transient replica slowdowns make the replicas visibly diverge, so
       the race window of lazy propagation is easy to hit. *)
    hiccup_interval_ms = 250.0;
    hiccup_duration_ms = 80.0;
    hiccup_factor = 12.0;
    ws_apply_base_ms = 2.0;
  }

(* One round: Agent A (session 1) buys shares, then — through the hidden
   channel, i.e. plain control flow here — Agent B (session 2) reads the
   account. Returns whether B saw the trade. *)
let round cluster account =
  let buy =
    Core.Transaction.make ~profile:"buy"
      [
        Storage.Query.Update_key
          {
            table = "trades";
            key = [| Storage.Value.Int account |];
            set = [ ("shares", Storage.Expr.(Col 1 + i 100)) ];
          };
      ]
  in
  let audit =
    Core.Transaction.make ~profile:"audit"
      [ Storage.Query.Get { table = "trades"; key = [| Storage.Value.Int account |] } ]
  in
  match Core.Cluster.submit cluster ~sid:1 buy with
  | Core.Transaction.Aborted _ -> None
  | Core.Transaction.Committed { commit_version = Some v; _ } -> (
    (* Hidden channel: B learns out-of-band that the trade committed. *)
    match Core.Cluster.submit cluster ~sid:2 audit with
    | Core.Transaction.Committed { snapshot; _ } -> Some (snapshot >= v)
    | Core.Transaction.Aborted _ -> None)
  | Core.Transaction.Committed { commit_version = None; _ } -> None

let run_mode mode =
  let cluster =
    Core.Cluster.create ~config ~mode ~schemas:[ trades_schema ]
      ~load:(fun db ->
        Storage.Database.load db "trades"
          (List.init 100 (fun i -> [| Storage.Value.Int i; Storage.Value.Int 0 |])))
      ()
  in
  let engine = Core.Cluster.engine cluster in
  (* Background traffic keeps the replicas busy, widening replica lag. *)
  Core.Client.spawn_many cluster ~n:40 ~first_sid:100
    {
      Core.Client.think_ms = Core.Client.no_think;
      next_request =
        (fun rng ->
          let account = Util.Rng.int rng 100 in
          Core.Transaction.make ~profile:"noise"
            [
              Storage.Query.Update_key
                {
                  table = "trades";
                  key = [| Storage.Value.Int account |];
                  set = [ ("shares", Storage.Expr.(Col 1 + i 1)) ];
                };
            ]);
    };
  let fresh = ref 0 and stale = ref 0 in
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 100.0;
      for round_ = 0 to 999 do
        let account = round_ mod 100 in
        match round cluster account with
        | Some true -> incr fresh
        | Some false -> incr stale
        | None -> ()
      done);
  Sim.Engine.run engine ~until:300_000.0;
  (!fresh, !stale)

let () =
  print_endline "Agent A trades, notifies Agent B out-of-band; B audits the account.";
  print_endline "Did B observe A's committed trade?\n";
  List.iter
    (fun mode ->
      let fresh, stale = run_mode mode in
      Printf.printf "%-8s consistency: %4d fresh reads, %4d stale reads%s\n"
        (Core.Consistency.to_string mode)
        fresh stale
        (if stale > 0 then "   <-- B acted on stale data!" else ""))
    [ Core.Consistency.Session; Core.Consistency.Coarse; Core.Consistency.Fine;
      Core.Consistency.Eager ]

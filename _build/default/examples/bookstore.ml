(* An online bookstore on the replicated database: the TPC-W schema and
   transactions driven through the public API, with a small load of
   emulated browsers, comparing two consistency configurations.

   Run with: dune exec examples/bookstore.exe *)

let params =
  { Workload.Tpcw.default with items = 1_000; customers = 500; authors = 100;
    initial_orders = 400; think_mean_ms = 200.0 }

let config =
  { Core.Config.tpcw with replicas = 4; seed = 11; record_log = true }

let run mode =
  let cluster =
    Core.Cluster.create ~config ~mode ~schemas:Workload.Tpcw.schemas
      ~load:(Workload.Tpcw.load params)
      ()
  in
  (* 40 emulated browsers on the shopping mix. *)
  for sid = 0 to 39 do
    Core.Client.spawn cluster ~sid ~rng:(Core.Cluster.rng cluster)
      (Workload.Tpcw.workload params Workload.Tpcw.Shopping ~sid)
  done;
  Core.Cluster.run_for cluster ~warmup_ms:2_000.0 ~measure_ms:15_000.0;
  cluster

let () =
  print_endline "TPC-W bookstore, 4 replicas, 40 emulated browsers, shopping mix\n";
  List.iter
    (fun mode ->
      let cluster = run mode in
      let m = Core.Cluster.metrics cluster in
      Printf.printf "%-8s: %5.1f TPS, response %6.1f ms, sync delay %6.2f ms, aborts %.2f%%\n"
        (Core.Consistency.to_string mode)
        (Core.Metrics.throughput_tps m)
        (Core.Metrics.mean_response_ms m)
        (Core.Metrics.sync_delay_ms m)
        (100.0 *. Core.Metrics.abort_rate m);
      (* Validate the run's log against the mode's guarantee. *)
      let log = Core.Cluster.records cluster in
      let strong = Check.Runlog.strong_consistency log in
      let scoped = Check.Runlog.fine_strong_consistency log in
      let session = Check.Runlog.session_consistency log in
      Printf.printf
        "          log: %d txns | strong violations: %d | table-set violations: %d | \
         session violations: %d\n\n"
        (List.length log) (List.length strong) (List.length scoped)
        (List.length session))
    [ Core.Consistency.Coarse; Core.Consistency.Session ]

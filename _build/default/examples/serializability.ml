(* Static serializability analysis under snapshot isolation.

   The paper provides GSI, which is weaker than serializability, and
   notes (§IV) that conditions exist to check whether a workload runs
   serializably under it — citing the dangerous-structure theory of
   Fekete et al. This example runs that analysis on three workloads.

   Run with: dune exec examples/serializability.exe *)

let report name profiles =
  Printf.printf "%-28s " name;
  match Check.Si_analysis.dangerous_structures profiles with
  | [] -> print_endline "serializable under SI/GSI"
  | ds ->
    Printf.printf "NOT serializable: %d dangerous structure(s)\n" (List.length ds);
    List.iter
      (fun d -> Format.printf "    %a@." Check.Si_analysis.pp_dangerous d)
      ds

let () =
  print_endline "Dangerous-structure analysis (Fekete et al.) of workload profiles:\n";

  (* 1. The paper's micro-benchmark: point reads and single-row blind
        updates per table. Safe: concurrent updates of the same row
        write-write conflict, so no vulnerable rw path exists. *)
  let micro =
    List.concat_map
      (fun t ->
        let item = Printf.sprintf "t%02d.val" t in
        [
          Check.Si_analysis.profile ~name:(Printf.sprintf "read_t%02d" t) ~reads:[ item ] ();
          Check.Si_analysis.profile ~name:(Printf.sprintf "upd_t%02d" t) ~writes:[ item ] ();
        ])
      [ 0; 1; 2 ]
  in
  report "micro-benchmark" micro;

  (* 2. Classic write skew (the paper's H3): each transaction reads both
        items and writes one. *)
  let write_skew =
    [
      Check.Si_analysis.profile ~name:"T1" ~reads:[ "X"; "Y" ] ~writes:[ "X" ] ();
      Check.Si_analysis.profile ~name:"T2" ~reads:[ "X"; "Y" ] ~writes:[ "Y" ] ();
    ]
  in
  report "write skew (H3 shape)" write_skew;

  (* 3. A TPC-W-like core at item granularity: cart updates, buy-confirm
        (reads cart, writes order + stock), best-sellers (read-only over
        order lines + items). *)
  let tpcw_core =
    [
      Check.Si_analysis.profile ~name:"shopping_cart"
        ~reads:[ "item.price" ]
        ~writes:[ "cart.line" ] ();
      Check.Si_analysis.profile ~name:"buy_confirm"
        ~reads:[ "cart.line"; "item.stock" ]
        ~writes:[ "order.line"; "item.stock"; "cart.line" ] ();
      Check.Si_analysis.profile ~name:"best_sellers"
        ~reads:[ "order.line"; "item.price" ] ();
      Check.Si_analysis.profile ~name:"product_detail" ~reads:[ "item.price" ] ();
    ]
  in
  report "TPC-W core (item-level)" tpcw_core;

  (* 4. The full TPC-C profile set from the workload library — the classic
        "TPC-C runs serializably under SI" result. *)
  report "TPC-C (workload profiles)" Workload.Tpcc.profiles;

  print_endline
    "\nA workload with no dangerous structure runs serializably under GSI, so the\n\
     strong-consistency configurations of this system then provide exactly the\n\
     semantics of a serializable centralized database."

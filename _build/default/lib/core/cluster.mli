(** The replicated database system: load balancer + certifier + replicas
    wired over a simulated network, with the full client transaction
    flow of §IV.

    {!submit} must be called from within a simulation process (see
    {!Sim.Process.spawn} or the {!Client} driver); it blocks for the
    virtual duration of the transaction and returns its outcome with the
    six-stage latency breakdown. *)

type t

val create :
  ?config:Config.t ->
  mode:Consistency.mode ->
  schemas:Storage.Schema.t list ->
  load:(Storage.Database.t -> unit) ->
  unit ->
  t
(** Build a cluster: every replica gets the schemas and is populated by
    [load]. Spawns the per-replica sequencer processes and, if
    configured, the MVCC vacuum process. *)

val engine : t -> Sim.Engine.t
val config : t -> Config.t
val mode : t -> Consistency.mode
val metrics : t -> Metrics.t
val certifier : t -> Certifier.t
val load_balancer : t -> Load_balancer.t
val replica : t -> int -> Replica.t
val rng : t -> Util.Rng.t
(** A generator split from the cluster seed, for workload use. *)

val submit : t -> sid:int -> Transaction.request -> Transaction.outcome
(** Run one transaction end to end. Records metrics and, when
    [record_log] is set, a {!Check.Runlog.record} for committed
    transactions. *)

(** {2 Run orchestration} *)

val run_for : t -> warmup_ms:float -> measure_ms:float -> unit
(** Advance virtual time by [warmup_ms], reset the metrics window (and
    discard any recorded log), then advance by [measure_ms]. *)

val records : t -> Check.Runlog.record list
(** Committed-transaction records collected in the current window
    (requires [record_log]). *)

(** {2 Fault injection} *)

val crash_replica : t -> int -> unit
(** Fail-stop the replica and remove it from routing and certification. *)

val recover_replica : t -> int -> unit
(** Bring the replica back: it replays the certifier log it missed (or,
    if the log was pruned past its outage, state-transfers a checkpoint
    from the freshest live peer first) and rejoins routing. *)

val crash_certifier : t -> unit
(** Fail-stop the certifier primary (requires [certifier_standbys > 0]).
    Update transactions queue until {!failover_certifier}. *)

val failover_certifier : t -> unit

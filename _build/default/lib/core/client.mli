(** Closed-loop client driver (the paper's RTE threads).

    Each client owns a session, repeatedly: think, generate a
    transaction from its workload function, submit it, and retry on
    abort (up to [max_retries], with the same request — the benchmark
    semantics of a re-submitted business action). *)

type workload = {
  think_ms : Util.Rng.t -> float;  (** sampled think time before each txn *)
  next_request : Util.Rng.t -> Transaction.request;
}

val spawn : Cluster.t -> sid:int -> rng:Util.Rng.t -> workload -> unit
(** Start one client process; it runs until the simulation stops. *)

val spawn_many : Cluster.t -> n:int -> first_sid:int -> workload -> unit
(** Start [n] clients with distinct sessions and independent RNG
    streams split from the cluster RNG. *)

val no_think : Util.Rng.t -> float
(** Zero think time: back-to-back submission (micro-benchmark). *)

val exp_think : mean_ms:float -> Util.Rng.t -> float
(** Negative-exponential think time (TPC-W). *)

lib/core/consistency.ml: Format Printf String

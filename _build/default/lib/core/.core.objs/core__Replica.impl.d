lib/core/replica.ml: Config Hashtbl List Sim Storage Transaction Util

lib/core/client.mli: Cluster Transaction Util

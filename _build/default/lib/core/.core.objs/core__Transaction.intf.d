lib/core/transaction.mli: Format Storage

lib/core/metrics.ml: Array Format List Sim Util

lib/core/cluster.ml: Array Certifier Check Config List Load_balancer Logs Metrics Option Replica Sim Storage String Transaction Util

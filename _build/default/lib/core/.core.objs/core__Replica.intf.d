lib/core/replica.mli: Config Sim Storage Transaction Util

lib/core/load_balancer.mli: Config Consistency Util

lib/core/load_balancer.ml: Array Config Consistency Hashtbl List Option Util

lib/core/cluster.mli: Certifier Check Config Consistency Load_balancer Metrics Replica Sim Storage Transaction Util

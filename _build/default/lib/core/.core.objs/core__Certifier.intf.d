lib/core/certifier.mli: Config Consistency Sim Storage Util

lib/core/transaction.ml: Format List Printf Storage

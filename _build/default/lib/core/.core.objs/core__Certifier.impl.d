lib/core/certifier.ml: Array Config Consistency Float Hashtbl List Sim Storage Util

lib/core/client.ml: Cluster Config Metrics Sim Transaction Util

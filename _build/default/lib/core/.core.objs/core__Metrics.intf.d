lib/core/metrics.mli: Format Sim

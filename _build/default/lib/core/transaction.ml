type request = {
  profile : string;
  table_set : string list;
  statements : Storage.Query.t list;
}

type abort_reason =
  | Certification_conflict
  | Early_certification
  | Replica_failure
  | Statement_error of string

type outcome =
  | Committed of {
      commit_version : int option;
      snapshot : int;
      stages : float array;
      response_ms : float;
    }
  | Aborted of {
      reason : abort_reason;
      response_ms : float;
    }

let make ~profile ?table_set statements =
  let table_set =
    match table_set with Some ts -> ts | None -> Storage.Query.table_set statements
  in
  { profile; table_set; statements }

let updates_possible r = List.exists Storage.Query.is_update r.statements

let pp_abort_reason ppf = function
  | Certification_conflict -> Format.pp_print_string ppf "certification conflict"
  | Early_certification -> Format.pp_print_string ppf "early certification conflict"
  | Replica_failure -> Format.pp_print_string ppf "replica failure"
  | Statement_error msg -> Format.fprintf ppf "statement error: %s" msg

let pp_outcome ppf = function
  | Committed { commit_version; snapshot; response_ms; _ } ->
    Format.fprintf ppf "committed%s (snapshot v%d, %.2fms)"
      (match commit_version with Some v -> Printf.sprintf " at v%d" v | None -> " read-only")
      snapshot response_ms
  | Aborted { reason; response_ms } ->
    Format.fprintf ppf "aborted: %a (%.2fms)" pp_abort_reason reason response_ms

let log_src =
  Logs.Src.create "repro.cluster" ~doc:"Transaction flow through the replicated cluster"

module Log = (val Logs.src_log log_src)

type t = {
  engine : Sim.Engine.t;
  cfg : Config.t;
  rng : Util.Rng.t;
  network : Sim.Network.t;
  certifier : Certifier.t;
  lb : Load_balancer.t;
  replicas : Replica.t array;
  metrics : Metrics.t;
  mutable next_tid : int;
  mutable log : Check.Runlog.record list;  (* reversed *)
}

let request_bytes (req : Transaction.request) =
  (* A rough wire estimate: statements travel as prepared-statement ids
     plus parameters. *)
  64 + (List.length req.Transaction.statements * 48)

let create ?(config = Config.default) ~mode ~schemas ~load () =
  let engine = Sim.Engine.create () in
  let rng = Util.Rng.create config.Config.seed in
  let network =
    Sim.Network.create engine ~rng:(Util.Rng.split rng) ~base_ms:config.Config.net_base_ms
      ~jitter_ms:config.Config.net_jitter_ms ~bandwidth_mbps:config.Config.net_bandwidth_mbps
  in
  let certifier =
    Certifier.create engine config ~rng:(Util.Rng.split rng) ~network ~mode
  in
  let lb = Load_balancer.create ~rng:(Util.Rng.split rng) config ~mode in
  let replicas =
    Array.init config.Config.replicas (fun id ->
        let db = Storage.Database.create () in
        List.iter (fun schema -> ignore (Storage.Database.create_table db schema)) schemas;
        load db;
        Replica.create engine config ~rng:(Util.Rng.split rng) ~id db)
  in
  let t =
    {
      engine;
      cfg = config;
      rng;
      network;
      certifier;
      lb;
      replicas;
      metrics = Metrics.create engine;
      next_tid = 0;
      log = [];
    }
  in
  Array.iter
    (fun replica ->
      let id = Replica.id replica in
      Certifier.subscribe certifier ~replica:id (fun ~version ~ws ->
          Replica.receive_refresh replica ~version ~ws);
      Replica.set_on_commit replica (fun ~version ->
          Certifier.ack certifier ~replica:id ~version);
      Replica.start replica)
    replicas;
  if config.Config.gc_interval_ms > 0.0 then
    Sim.Process.spawn engine (fun () ->
        let rec loop () =
          Sim.Process.sleep engine config.Config.gc_interval_ms;
          (* Vacuum each replica behind its own applied version: any live
             snapshot there is at most gc_window versions old. *)
          Array.iter
            (fun r ->
              let keep_after = max 0 (Replica.v_local r - config.Config.gc_window) in
              ignore (Storage.Database.gc (Replica.database r) ~keep_after))
            replicas;
          (* Prune the certifier log behind the slowest live replica; a
             replica that stays down longer than this recovers by state
             transfer instead of log replay. *)
          let min_live =
            Array.fold_left
              (fun acc r ->
                if Replica.is_crashed r then acc else min acc (Replica.v_local r))
              max_int replicas
          in
          if min_live < max_int then
            Certifier.prune certifier
              ~keep_after:(max 0 (min_live - config.Config.gc_window));
          loop ()
        in
        loop ());
  t

let engine t = t.engine
let config t = t.cfg
let mode t = Load_balancer.mode t.lb
let metrics t = t.metrics
let certifier t = t.certifier
let load_balancer t = t.lb
let replica t i = t.replicas.(i)
let rng t = Util.Rng.split t.rng

let render_key key =
  String.concat "," (List.map Storage.Value.to_string (Array.to_list key))

let record_commit t ~tid ~sid ~begin_time ~snapshot ~commit_version ~table_set ~ws =
  if t.cfg.Config.record_log then begin
    let entries = Storage.Writeset.entries ws in
    let record =
      {
        Check.Runlog.tid;
        session = sid;
        begin_time;
        ack_time = Sim.Engine.now t.engine;
        snapshot_version = snapshot;
        commit_version;
        table_set;
        tables_written = Storage.Writeset.tables ws;
        write_keys =
          List.map
            (fun e -> (e.Storage.Writeset.ws_table, render_key e.Storage.Writeset.ws_key))
            entries;
      }
    in
    t.log <- record :: t.log
  end

(* Response path shared by every outcome: replica -> LB -> client, with
   the LB's bookkeeping in between. *)
let respond t ~replica_id ~ack_bytes ~on_lb =
  Sim.Network.transfer t.network ~size_bytes:ack_bytes;
  Sim.Process.sleep t.engine t.cfg.Config.lb_ms;
  Load_balancer.note_complete t.lb ~replica:replica_id;
  on_lb ();
  Sim.Network.transfer t.network ~size_bytes:ack_bytes

let submit t ~sid (req : Transaction.request) =
  let begin_time = Sim.Engine.now t.engine in
  let tid = t.next_tid in
  t.next_tid <- t.next_tid + 1;
  (* Client -> load balancer. *)
  Sim.Network.transfer t.network ~size_bytes:(request_bytes req);
  Sim.Process.sleep t.engine t.cfg.Config.lb_ms;
  let replica_id = Load_balancer.choose_replica t.lb ~sid in
  let replica = t.replicas.(replica_id) in
  let v_start = Load_balancer.start_version t.lb ~sid ~table_set:req.Transaction.table_set in
  Load_balancer.note_dispatch t.lb ~replica:replica_id;
  (* Load balancer -> replica. *)
  Sim.Network.transfer t.network ~size_bytes:(request_bytes req);
  let stages = Array.make Metrics.stage_count 0.0 in
  let now () = Sim.Engine.now t.engine in
  Log.debug (fun m ->
      m "[%.3f] T%d (session %d, %s) -> replica %d, start version %d" begin_time tid sid
        req.Transaction.profile replica_id v_start);
  let abort ?(finish = true) reason =
    if finish then Replica.finish_txn replica ~tid;
    respond t ~replica_id ~ack_bytes:32 ~on_lb:(fun () -> ());
    Metrics.record_abort t.metrics;
    Log.debug (fun m ->
        m "[%.3f] T%d aborted: %a" (now ()) tid Transaction.pp_abort_reason reason);
    Transaction.Aborted { reason; response_ms = now () -. begin_time }
  in
  (* Stage: version — the synchronization start delay. *)
  let version_start = now () in
  match Replica.await_version replica v_start with
  | Error reason ->
    stages.(Metrics.stage_index Metrics.Version) <- now () -. version_start;
    abort ~finish:false reason
  | Ok () -> (
    stages.(Metrics.stage_index Metrics.Version) <- now () -. version_start;
    let txn = Replica.begin_txn replica ~tid in
    let snapshot = Storage.Txn.snapshot txn in
    (* Stage: queries. *)
    let queries_start = now () in
    let rec run_statements = function
      | [] -> Ok ()
      | stmt :: rest ->
        if Replica.abort_requested replica ~tid then Error Transaction.Early_certification
        else if Replica.is_crashed replica then Error Transaction.Replica_failure
        else begin
          match Replica.exec_statement replica txn stmt with
          | Storage.Query.Error msg -> Error (Transaction.Statement_error msg)
          | Storage.Query.Rows _ | Storage.Query.Affected _ ->
            if Storage.Query.is_update stmt && not (Replica.early_certify replica txn) then
              Error Transaction.Early_certification
            else run_statements rest
        end
    in
    let statement_result = run_statements req.Transaction.statements in
    stages.(Metrics.stage_index Metrics.Queries) <- now () -. queries_start;
    match statement_result with
    | Error reason -> abort reason
    | Ok () -> (
      let ws = Storage.Txn.writeset txn in
      if Storage.Writeset.is_empty ws then begin
        (* Read-only: commit locally, no certification. *)
        let commit_start = now () in
        Replica.commit_read_only replica txn;
        stages.(Metrics.stage_index Metrics.Commit) <- now () -. commit_start;
        Replica.finish_txn replica ~tid;
        respond t ~replica_id ~ack_bytes:64 ~on_lb:(fun () -> ());
        let response_ms = now () -. begin_time in
        Metrics.record_commit t.metrics ~read_only:true ~stages ~response_ms;
        record_commit t ~tid ~sid ~begin_time ~snapshot ~commit_version:None
          ~table_set:req.Transaction.table_set ~ws;
        Transaction.Committed { commit_version = None; snapshot; stages; response_ms }
      end
      else begin
        (* Stage: certify — round trip to the certifier. *)
        let certify_start = now () in
        let ws_bytes = Storage.Codec.writeset_bytes ws + 64 in
        Sim.Network.transfer t.network ~size_bytes:ws_bytes;
        let decision = Certifier.certify t.certifier ~origin:replica_id ~snapshot ~ws in
        Sim.Network.transfer t.network ~size_bytes:32;
        stages.(Metrics.stage_index Metrics.Certify) <- now () -. certify_start;
        match decision with
        | Certifier.Abort -> abort Transaction.Certification_conflict
        | Certifier.Commit { version; global_commit } -> (
          (* Stages: sync (wait for predecessors) then commit. *)
          let sync_start = now () in
          let done_ = Replica.commit_local replica ~version ~ws in
          match Sim.Ivar.read done_ with
          | Error reason ->
            stages.(Metrics.stage_index Metrics.Sync) <- now () -. sync_start;
            abort ~finish:false reason
          | Ok commit_work_start ->
            stages.(Metrics.stage_index Metrics.Sync) <- commit_work_start -. sync_start;
            stages.(Metrics.stage_index Metrics.Commit) <- now () -. commit_work_start;
            Replica.finish_txn replica ~tid;
            (* Stage: global — eager only. *)
            (match global_commit with
            | None -> ()
            | Some ivar ->
              let global_start = now () in
              Sim.Ivar.read ivar;
              stages.(Metrics.stage_index Metrics.Global) <- now () -. global_start);
            respond t ~replica_id ~ack_bytes:64 ~on_lb:(fun () ->
                Load_balancer.note_commit_ack t.lb ~sid ~version
                  ~tables_written:(Storage.Writeset.tables ws));
            let response_ms = now () -. begin_time in
            Metrics.record_commit t.metrics ~read_only:false ~stages ~response_ms;
            record_commit t ~tid ~sid ~begin_time ~snapshot ~commit_version:(Some version)
              ~table_set:req.Transaction.table_set ~ws;
            Log.debug (fun m ->
                m "[%.3f] T%d committed at v%d (snapshot v%d, %.2fms)" (now ()) tid
                  version snapshot response_ms);
            Transaction.Committed
              { commit_version = Some version; snapshot; stages; response_ms })
      end))

let run_for t ~warmup_ms ~measure_ms =
  let start = Sim.Engine.now t.engine in
  Sim.Engine.run t.engine ~until:(start +. warmup_ms);
  Metrics.reset_window t.metrics;
  t.log <- [];
  Sim.Engine.run t.engine ~until:(start +. warmup_ms +. measure_ms)

let records t = List.rev t.log

let crash_replica t i =
  Load_balancer.set_live t.lb ~replica:i false;
  Certifier.mark_down t.certifier ~replica:i;
  Replica.crash t.replicas.(i)

let recover_replica t i =
  let r = t.replicas.(i) in
  (match Certifier.writesets_from t.certifier (Replica.v_local r) with
  | Some missed -> Replica.recover r ~missed
  | None ->
    (* The outage outlived the certifier's pruned log: state-transfer a
       checkpoint from the freshest live peer, then replay the residual
       log suffix. *)
    let donor =
      Array.fold_left
        (fun best candidate ->
          let id = Replica.id candidate in
          if id <> i && Load_balancer.is_live t.lb ~replica:id then
            match best with
            | Some b when Replica.v_local b >= Replica.v_local candidate -> best
            | Some _ | None -> Some candidate
          else best)
        None t.replicas
    in
    (match donor with
    | None -> failwith "Cluster.recover_replica: no live donor for state transfer"
    | Some donor ->
      Replica.state_transfer r ~snapshot:(Replica.checkpoint donor);
      let missed =
        Option.value
          (Certifier.writesets_from t.certifier (Replica.v_local r))
          ~default:[]
      in
      Replica.recover r ~missed));
  Certifier.mark_up t.certifier ~replica:i;
  Load_balancer.set_live t.lb ~replica:i true

let crash_certifier t = Certifier.crash t.certifier

let failover_certifier t = Certifier.failover t.certifier

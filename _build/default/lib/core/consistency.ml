type mode =
  | Eager
  | Coarse
  | Fine
  | Session
  | Bounded of int

let all = [ Eager; Coarse; Fine; Session ]

let is_strong = function
  | Eager | Coarse | Fine -> true
  | Session -> false
  | Bounded k -> k = 0

let to_string = function
  | Eager -> "eager"
  | Coarse -> "coarse"
  | Fine -> "fine"
  | Session -> "session"
  | Bounded k -> Printf.sprintf "bounded:%d" k

let of_string s =
  match String.lowercase_ascii s with
  | "eager" | "esc" -> Ok Eager
  | "coarse" | "lsc" -> Ok Coarse
  | "fine" | "lfc" -> Ok Fine
  | "session" | "sc" -> Ok Session
  | other -> (
    match String.index_opt other ':' with
    | Some i when String.sub other 0 i = "bounded" -> (
      let rest = String.sub other (i + 1) (String.length other - i - 1) in
      match int_of_string_opt rest with
      | Some k when k >= 0 -> Ok (Bounded k)
      | Some _ | None -> Error (Printf.sprintf "bad staleness bound in %S" s))
    | Some _ | None -> Error (Printf.sprintf "unknown consistency mode %S" s))

let pp ppf mode = Format.pp_print_string ppf (to_string mode)

type stage = Version | Queries | Certify | Sync | Commit | Global

let stage_index = function
  | Version -> 0
  | Queries -> 1
  | Certify -> 2
  | Sync -> 3
  | Commit -> 4
  | Global -> 5

let stage_count = 6

let stage_name = function
  | Version -> "version"
  | Queries -> "queries"
  | Certify -> "certify"
  | Sync -> "sync"
  | Commit -> "commit"
  | Global -> "global"

let stages = [ Version; Queries; Certify; Sync; Commit; Global ]

type t = {
  engine : Sim.Engine.t;
  mutable window_start : float;
  mutable committed : int;
  mutable updates : int;
  mutable aborted : int;
  mutable retry_exhausted : int;
  response : Util.Stats.t;
  stage_sums : float array;  (* over all committed txns *)
  stage_sums_update : float array;  (* over update txns only *)
}

let create engine =
  {
    engine;
    window_start = Sim.Engine.now engine;
    committed = 0;
    updates = 0;
    aborted = 0;
    retry_exhausted = 0;
    response = Util.Stats.create ();
    stage_sums = Array.make stage_count 0.0;
    stage_sums_update = Array.make stage_count 0.0;
  }

let reset_window t =
  t.window_start <- Sim.Engine.now t.engine;
  t.committed <- 0;
  t.updates <- 0;
  t.aborted <- 0;
  t.retry_exhausted <- 0;
  Util.Stats.clear t.response;
  Array.fill t.stage_sums 0 stage_count 0.0;
  Array.fill t.stage_sums_update 0 stage_count 0.0

let record_commit t ~read_only ~stages ~response_ms =
  t.committed <- t.committed + 1;
  Util.Stats.add t.response response_ms;
  Array.iteri (fun i v -> t.stage_sums.(i) <- t.stage_sums.(i) +. v) stages;
  if not read_only then begin
    t.updates <- t.updates + 1;
    Array.iteri (fun i v -> t.stage_sums_update.(i) <- t.stage_sums_update.(i) +. v) stages
  end

let record_abort t = t.aborted <- t.aborted + 1

let record_retry_exhausted t = t.retry_exhausted <- t.retry_exhausted + 1

let window_ms t = Sim.Engine.now t.engine -. t.window_start

let committed t = t.committed

let aborted t = t.aborted

let retry_exhausted t = t.retry_exhausted

let throughput_tps t =
  let ms = window_ms t in
  if ms <= 0.0 then 0.0 else float_of_int t.committed /. (ms /. 1000.0)

let mean_response_ms t = Util.Stats.mean t.response

let percentile_response_ms t p = Util.Stats.percentile t.response p

let mean_stage_ms t stage =
  if t.committed = 0 then 0.0
  else t.stage_sums.(stage_index stage) /. float_of_int t.committed

let mean_stage_update_ms t stage =
  if t.updates = 0 then 0.0
  else t.stage_sums_update.(stage_index stage) /. float_of_int t.updates

let sync_delay_ms t = mean_stage_ms t Version +. mean_stage_update_ms t Global

let abort_rate t =
  let total = t.committed + t.aborted in
  if total = 0 then 0.0 else float_of_int t.aborted /. float_of_int total

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>window %.0fms: %d committed (%.1f TPS), %d aborted (%.1f%%), %d gave up@,\
     response mean %.2fms p50 %.2fms p99 %.2fms@,"
    (window_ms t) t.committed (throughput_tps t) t.aborted (100.0 *. abort_rate t)
    t.retry_exhausted (mean_response_ms t) (percentile_response_ms t 50.0)
    (percentile_response_ms t 99.0);
  List.iter
    (fun s -> Format.fprintf ppf "%8s %.3fms@," (stage_name s) (mean_stage_ms t s))
    stages;
  Format.fprintf ppf "@]"

(** Experiment metrics: throughput and the paper's six-stage latency
    breakdown (§V.A).

    Read-only transactions have three stages (version, queries, commit);
    update transactions add certify, sync and — under the eager
    configuration — global. Recording only happens after
    {!reset_window}, so warm-up intervals are excluded. *)

type stage = Version | Queries | Certify | Sync | Commit | Global

val stage_index : stage -> int
val stage_count : int
val stage_name : stage -> string
val stages : stage list

type t

val create : Sim.Engine.t -> t

val reset_window : t -> unit
(** Start (or restart) the measurement window; discards prior samples. *)

val record_commit : t -> read_only:bool -> stages:float array -> response_ms:float -> unit

val record_abort : t -> unit

val record_retry_exhausted : t -> unit

(** {2 Reading results} *)

val window_ms : t -> float
(** Elapsed virtual time since the window started. *)

val committed : t -> int

val aborted : t -> int

val retry_exhausted : t -> int

val throughput_tps : t -> float
(** Committed transactions per (virtual) second in the window. *)

val mean_response_ms : t -> float

val percentile_response_ms : t -> float -> float

val mean_stage_ms : t -> stage -> float
(** Mean over {e all} committed transactions (stages a class does not
    have count as 0, matching the paper's stacked-bar convention). *)

val mean_stage_update_ms : t -> stage -> float
(** Mean over update transactions only. *)

val sync_delay_ms : t -> float
(** The paper's "synchronization delay": mean Version stage for lazy
    configurations plus mean Global stage (only Eager has one). *)

val abort_rate : t -> float
(** Aborts / (commits + aborts); 0 when idle. *)

val pp_summary : Format.formatter -> t -> unit

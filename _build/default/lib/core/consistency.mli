(** The four consistency configurations of the paper (§III–IV). *)

type mode =
  | Eager  (** eager strong consistency: global commit delay *)
  | Coarse  (** lazy coarse-grained strong consistency: wait on [V_system] *)
  | Fine  (** lazy fine-grained strong consistency: wait on table-set versions *)
  | Session  (** session consistency: wait on the client's own last version *)
  | Bounded of int
      (** relaxed currency (extension, cf. §VI): transactions may start
          up to [k] versions behind [V_system]. [Bounded 0] coincides
          with [Coarse]. *)

val all : mode list
(** The paper's four configurations (excludes the [Bounded] extension). *)

val is_strong : mode -> bool
(** Whether the mode guarantees strong consistency ([Eager], [Coarse],
    [Fine], and [Bounded 0]). *)

val to_string : mode -> string

val of_string : string -> (mode, string) result

val pp : Format.formatter -> mode -> unit

type binop =
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Add | Sub | Mul
  | Concat

type expr =
  | Lit of Storage.Value.t
  | Column of string option * string
  | Binop of binop * expr * expr
  | Not of expr
  | Is_null of expr * bool
  | Like of expr * string

type aggregate = Count_star | Sum of string | Avg of string | Min of string | Max of string

type projection =
  | Star
  | Columns of (string option * string) list
  | Aggregate of aggregate

type order_direction = Asc | Desc

type select = {
  projection : projection;
  from_table : string;
  join : (string * (string option * string) * (string option * string)) option;
  where : expr option;
  group_by : string option;
  order_by : (string * order_direction) option;
  limit : int option;
}

type column_def = {
  col_name : string;
  col_type : Storage.Value.ty;
  nullable : bool;
  primary : bool;
}

type stmt =
  | Select of select
  | Insert of { table : string; columns : string list option; values : expr list list }
  | Update of { table : string; set : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Create_table of {
      name : string;
      columns : column_def list;
      primary_key : string list;
      indexes : string list;
    }
  | Begin
  | Commit
  | Rollback
  | Show_tables

let binop_name = function
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "AND" | Or -> "OR" | Add -> "+" | Sub -> "-" | Mul -> "*" | Concat -> "||"

let rec pp_expr ppf = function
  | Lit v -> Storage.Value.pp ppf v
  | Column (None, c) -> Format.pp_print_string ppf c
  | Column (Some t, c) -> Format.fprintf ppf "%s.%s" t c
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Not e -> Format.fprintf ppf "(NOT %a)" pp_expr e
  | Is_null (e, true) -> Format.fprintf ppf "(%a IS NULL)" pp_expr e
  | Is_null (e, false) -> Format.fprintf ppf "(%a IS NOT NULL)" pp_expr e
  | Like (e, p) -> Format.fprintf ppf "(%a LIKE %S)" pp_expr e p

let pp_stmt ppf = function
  | Select { from_table; _ } -> Format.fprintf ppf "SELECT ... FROM %s" from_table
  | Insert { table; _ } -> Format.fprintf ppf "INSERT INTO %s" table
  | Update { table; set; where } ->
    Format.fprintf ppf "UPDATE %s SET %a%a" table
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (c, e) -> Format.fprintf ppf "%s = %a" c pp_expr e))
      set
      (fun ppf -> function
        | None -> ()
        | Some w -> Format.fprintf ppf " WHERE %a" pp_expr w)
      where
  | Delete { table; _ } -> Format.fprintf ppf "DELETE FROM %s" table
  | Create_table { name; _ } -> Format.fprintf ppf "CREATE TABLE %s" name
  | Begin -> Format.pp_print_string ppf "BEGIN"
  | Commit -> Format.pp_print_string ppf "COMMIT"
  | Rollback -> Format.pp_print_string ppf "ROLLBACK"
  | Show_tables -> Format.pp_print_string ppf "SHOW TABLES"

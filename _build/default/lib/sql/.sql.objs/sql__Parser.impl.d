lib/sql/parser.ml: Array Ast Format Lexer List Printf Storage String

lib/sql/ast.ml: Format Storage

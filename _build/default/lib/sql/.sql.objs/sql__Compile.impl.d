lib/sql/compile.ml: Array Ast Format Hashtbl List Option Storage String

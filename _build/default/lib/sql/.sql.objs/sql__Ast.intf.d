lib/sql/ast.mli: Format Storage

lib/sql/session.ml: Array Ast Compile List Option Parser Printf Storage String

lib/sql/session.mli: Compile Storage

lib/sql/compile.mli: Ast Stdlib Storage

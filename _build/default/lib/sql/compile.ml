type result = {
  columns : string list;
  rows : Storage.Value.t array list;
  affected : int;
}

let empty_result = { columns = []; rows = []; affected = 0 }

exception Compile_error of string

let fail fmt = Format.kasprintf (fun msg -> raise (Compile_error msg)) fmt

(* Name-resolution environment: each visible column with its table, name
   and position in the (possibly joined) row. *)
type env = { slots : (string * string * int) list }

let env_of_schema (schema : Storage.Schema.t) =
  {
    slots =
      Array.to_list
        (Array.mapi
           (fun i col -> (schema.Storage.Schema.table_name, col.Storage.Schema.col_name, i))
           schema.Storage.Schema.columns);
  }

let env_of_join (left : Storage.Schema.t) (right : Storage.Schema.t) =
  let offset = Array.length left.Storage.Schema.columns in
  {
    slots =
      (env_of_schema left).slots
      @ Array.to_list
          (Array.mapi
             (fun i col ->
               (right.Storage.Schema.table_name, col.Storage.Schema.col_name, i + offset))
             right.Storage.Schema.columns);
  }

let resolve env (qualifier, name) =
  let matches =
    List.filter
      (fun (table, col, _) ->
        String.equal col name
        && match qualifier with Some q -> String.equal q table | None -> true)
      env.slots
  in
  match matches with
  | [ (_, _, idx) ] -> idx
  | [] ->
    fail "unknown column %s%s"
      (match qualifier with Some q -> q ^ "." | None -> "")
      name
  | _ :: _ -> fail "ambiguous column %s (qualify it with a table name)" name

let rec compile_expr env (e : Ast.expr) : Storage.Expr.t =
  match e with
  | Ast.Lit v -> Storage.Expr.Const v
  | Ast.Column (q, c) -> Storage.Expr.Col (resolve env (q, c))
  | Ast.Binop (op, a, b) -> begin
    let ca = compile_expr env a and cb = compile_expr env b in
    match op with
    | Ast.Eq -> Storage.Expr.Cmp (Storage.Expr.Eq, ca, cb)
    | Ast.Ne -> Storage.Expr.Cmp (Storage.Expr.Ne, ca, cb)
    | Ast.Lt -> Storage.Expr.Cmp (Storage.Expr.Lt, ca, cb)
    | Ast.Le -> Storage.Expr.Cmp (Storage.Expr.Le, ca, cb)
    | Ast.Gt -> Storage.Expr.Cmp (Storage.Expr.Gt, ca, cb)
    | Ast.Ge -> Storage.Expr.Cmp (Storage.Expr.Ge, ca, cb)
    | Ast.And -> Storage.Expr.And (ca, cb)
    | Ast.Or -> Storage.Expr.Or (ca, cb)
    | Ast.Add -> Storage.Expr.Add (ca, cb)
    | Ast.Sub -> Storage.Expr.Sub (ca, cb)
    | Ast.Mul -> Storage.Expr.Mul (ca, cb)
    | Ast.Concat -> Storage.Expr.Concat (ca, cb)
  end
  | Ast.Not e -> Storage.Expr.Not (compile_expr env e)
  | Ast.Is_null (e, positive) ->
    let inner = Storage.Expr.Is_null (compile_expr env e) in
    if positive then inner else Storage.Expr.Not inner
  | Ast.Like (e, pattern) -> Storage.Expr.Like (compile_expr env e, pattern)

let schema_of_create ~name ~columns ~primary_key ~indexes =
  try
    if columns = [] then fail "CREATE TABLE %s: no columns" name;
    let column_level_keys =
      List.filter_map
        (fun c -> if c.Ast.primary then Some c.Ast.col_name else None)
        columns
    in
    let key =
      match (column_level_keys, primary_key) with
      | [], [] -> fail "CREATE TABLE %s: no PRIMARY KEY" name
      | keys, [] -> keys
      | [], keys -> keys
      | _, _ -> fail "CREATE TABLE %s: PRIMARY KEY given twice" name
    in
    let nullable =
      List.filter_map
        (fun c ->
          if c.Ast.nullable && not (List.mem c.Ast.col_name key) then Some c.Ast.col_name
          else None)
        columns
    in
    Ok
      (Storage.Schema.make ~name
         ~columns:(List.map (fun c -> (c.Ast.col_name, c.Ast.col_type)) columns)
         ~nullable ~indexes ~key ())
  with
  | Compile_error msg -> Error msg
  | Invalid_argument msg -> Error msg

(* Fold a constant expression (INSERT values). *)
let const_value env_less e =
  match e with
  | Ast.Column _ -> fail "column references are not allowed in VALUES"
  | _ ->
    let compiled = compile_expr { slots = [] } e in
    ignore env_less;
    (try Storage.Expr.eval [||] compiled
     with Storage.Expr.Type_error msg -> fail "in VALUES: %s" msg)

let table_schema txn name =
  match Storage.Database.table_opt (Storage.Txn.database txn) name with
  | Some table -> Storage.Table.schema table
  | None -> fail "unknown table %s" name

let column_names (schema : Storage.Schema.t) =
  Array.to_list (Array.map (fun c -> c.Storage.Schema.col_name) schema.Storage.Schema.columns)

let project env projection rows =
  match projection with
  | Ast.Star -> (List.map (fun (_, c, _) -> c) env.slots, rows)
  | Ast.Columns cols ->
    let indices = List.map (fun qc -> resolve env qc) cols in
    let names = List.map snd cols in
    (names, List.map (fun row -> Array.of_list (List.map (fun i -> row.(i)) indices)) rows)
  | Ast.Aggregate _ -> fail "internal: aggregate handled separately"

let order_rows env (col, dir) rows =
  let idx = resolve env (None, col) in
  let cmp a b =
    let c = Storage.Value.compare a.(idx) b.(idx) in
    match dir with Ast.Asc -> c | Ast.Desc -> -c
  in
  List.stable_sort cmp rows

let truncate limit rows =
  match limit with Some l -> List.filteri (fun i _ -> i < l) rows | None -> rows

let agg_column_name = function
  | Ast.Count_star -> "count(*)"
  | Ast.Sum c -> "sum(" ^ c ^ ")"
  | Ast.Avg c -> "avg(" ^ c ^ ")"
  | Ast.Min c -> "min(" ^ c ^ ")"
  | Ast.Max c -> "max(" ^ c ^ ")"

let run_aggregate txn (sel : Ast.select) agg =
  let schema = table_schema txn sel.Ast.from_table in
  let env = env_of_schema schema in
  if sel.Ast.join <> None then fail "aggregates over joins are not supported";
  let where = Option.map (compile_expr env) sel.Ast.where in
  let op =
    match agg with
    | Ast.Count_star -> Storage.Query.Count_all
    | Ast.Sum c -> Storage.Query.Sum c
    | Ast.Avg c -> Storage.Query.Avg c
    | Ast.Min c -> Storage.Query.Min_of c
    | Ast.Max c -> Storage.Query.Max_of c
  in
  match
    Storage.Query.exec txn
      (Storage.Query.Aggregate { table = sel.Ast.from_table; op; where })
  with
  | Storage.Query.Rows rows, _ -> { columns = [ agg_column_name agg ]; rows; affected = 0 }
  | Storage.Query.Affected _, _ -> fail "internal: aggregate returned a count"
  | Storage.Query.Error msg, _ -> fail "%s" msg

let run_group_by txn (sel : Ast.select) group_col =
  let schema = table_schema txn sel.Ast.from_table in
  let env = env_of_schema schema in
  if sel.Ast.join <> None then fail "GROUP BY over joins is not supported";
  (match sel.Ast.projection with
  | Ast.Columns [ (_, c) ] when String.equal c group_col -> ()
  | Ast.Star -> ()
  | Ast.Columns _ | Ast.Aggregate _ ->
    fail "GROUP BY supports the shape: SELECT %s, COUNT(*) ..." group_col);
  let where = Option.map (compile_expr env) sel.Ast.where in
  let idx = resolve env (None, group_col) in
  let rows = Storage.Txn.select txn ~table:sel.Ast.from_table ?where () in
  let counts : (Storage.Value.t, int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun row ->
      match Hashtbl.find_opt counts row.(idx) with
      | Some r -> incr r
      | None -> Hashtbl.add counts row.(idx) (ref 1))
    rows;
  let groups = Hashtbl.fold (fun v r acc -> (v, !r) :: acc) counts [] in
  let ordered =
    List.sort
      (fun (va, ca) (vb, cb) ->
        match compare cb ca with 0 -> Storage.Value.compare va vb | c -> c)
      groups
  in
  let rows =
    truncate sel.Ast.limit
      (List.map (fun (v, c) -> [| v; Storage.Value.Int c |]) ordered)
  in
  { columns = [ group_col; "count(*)" ]; rows; affected = 0 }

let run_join txn (sel : Ast.select) (join_table, lcol, rcol) =
  let left_schema = table_schema txn sel.Ast.from_table in
  let right_schema = table_schema txn join_table in
  let env = env_of_join left_schema right_schema in
  (* Normalize the ON condition so the left side references the FROM
     table. *)
  let belongs_to (schema : Storage.Schema.t) (q, c) =
    (match q with
    | Some q -> String.equal q schema.Storage.Schema.table_name
    | None -> true)
    && Array.exists
         (fun col -> String.equal col.Storage.Schema.col_name c)
         schema.Storage.Schema.columns
  in
  let left_col, right_col =
    if belongs_to left_schema lcol && belongs_to right_schema rcol then (snd lcol, snd rcol)
    else if belongs_to left_schema rcol && belongs_to right_schema lcol then
      (snd rcol, snd lcol)
    else fail "JOIN condition must relate the two joined tables"
  in
  match
    Storage.Query.exec txn
      (Storage.Query.Join
         {
           left = sel.Ast.from_table;
           right = join_table;
           left_col;
           right_col;
           left_where = None;
           limit = None;
         })
  with
  | Storage.Query.Error msg, _ -> fail "%s" msg
  | Storage.Query.Affected _, _ -> fail "internal: join returned a count"
  | Storage.Query.Rows rows, _ ->
    let rows =
      match sel.Ast.where with
      | None -> rows
      | Some w ->
        let pred = compile_expr env w in
        List.filter (fun row -> Storage.Expr.eval_bool row pred) rows
    in
    let rows = match sel.Ast.order_by with Some o -> order_rows env o rows | None -> rows in
    let rows = truncate sel.Ast.limit rows in
    let columns, rows = project env sel.Ast.projection rows in
    { columns; rows; affected = 0 }

let run_select txn (sel : Ast.select) =
  match (sel.Ast.projection, sel.Ast.group_by, sel.Ast.join) with
  | Ast.Aggregate agg, None, None -> run_aggregate txn sel agg
  | _, Some g, _ -> run_group_by txn sel g
  | _, None, Some join -> run_join txn sel join
  | projection, None, None ->
    let schema = table_schema txn sel.Ast.from_table in
    let env = env_of_schema schema in
    let where = Option.map (compile_expr env) sel.Ast.where in
    (* A LIMIT can only be pushed into the scan when no reordering
       happens afterwards. *)
    let pushed_limit = if sel.Ast.order_by = None then sel.Ast.limit else None in
    let rows =
      Storage.Txn.select txn ~table:sel.Ast.from_table ?where ?limit:pushed_limit ()
    in
    let rows = match sel.Ast.order_by with Some o -> order_rows env o rows | None -> rows in
    let rows = truncate sel.Ast.limit rows in
    let columns, rows = project env projection rows in
    { columns; rows; affected = 0 }

let run_insert txn ~table ~columns ~values =
  let schema = table_schema txn table in
  let names = column_names schema in
  let arity = List.length names in
  let make_row tuple =
    let tuple_values = List.map (const_value () ) tuple in
    match columns with
    | None ->
      if List.length tuple_values <> arity then
        fail "INSERT arity mismatch: table %s has %d columns" table arity;
      Array.of_list tuple_values
    | Some cols ->
      if List.length cols <> List.length tuple_values then
        fail "INSERT: %d columns but %d values" (List.length cols) (List.length tuple_values);
      let row = Array.make arity Storage.Value.Null in
      List.iter2
        (fun col v ->
          match Storage.Schema.column_index schema col with
          | idx -> row.(idx) <- v
          | exception Not_found -> fail "INSERT: unknown column %s.%s" table col)
        cols tuple_values;
      row
  in
  let rows = List.map make_row values in
  List.iter
    (fun row ->
      match Storage.Txn.insert txn ~table row with
      | Ok () -> ()
      | Error msg -> fail "%s" msg)
    rows;
  { empty_result with affected = List.length rows }

let run_update txn ~table ~set ~where =
  let schema = table_schema txn table in
  let env = env_of_schema schema in
  let where = Option.map (compile_expr env) where in
  let set =
    List.map
      (fun (col, e) ->
        (match Storage.Schema.column_index schema col with
        | _ -> ()
        | exception Not_found -> fail "UPDATE: unknown column %s.%s" table col);
        (col, compile_expr env e))
      set
  in
  let affected = Storage.Txn.update txn ~table ?where ~set () in
  { empty_result with affected }

let run_delete txn ~table ~where =
  let schema = table_schema txn table in
  let env = env_of_schema schema in
  let where = Option.map (compile_expr env) where in
  let affected = Storage.Txn.delete txn ~table ?where () in
  { empty_result with affected }

let run_dml txn stmt =
  try
    match stmt with
    | Ast.Select sel -> Ok (run_select txn sel)
    | Ast.Insert { table; columns; values } -> Ok (run_insert txn ~table ~columns ~values)
    | Ast.Update { table; set; where } -> Ok (run_update txn ~table ~set ~where)
    | Ast.Delete { table; where } -> Ok (run_delete txn ~table ~where)
    | Ast.Create_table _ | Ast.Begin | Ast.Commit | Ast.Rollback | Ast.Show_tables ->
      Error "not a DML statement"
  with
  | Compile_error msg -> Error msg
  | Storage.Expr.Type_error msg -> Error ("type error: " ^ msg)
  | Invalid_argument msg -> Error msg

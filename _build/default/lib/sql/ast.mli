(** Abstract syntax of the supported SQL dialect.

    Statements: CREATE TABLE, SELECT (with WHERE / JOIN ... ON / GROUP BY
    / ORDER BY / LIMIT and aggregates), INSERT, UPDATE, DELETE, and the
    transaction-control statements BEGIN / COMMIT / ROLLBACK, plus SHOW
    TABLES and EXPLAIN-less niceties for the REPL. *)

type binop =
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Add | Sub | Mul
  | Concat

type expr =
  | Lit of Storage.Value.t
  | Column of string option * string  (** optional table qualifier *)
  | Binop of binop * expr * expr
  | Not of expr
  | Is_null of expr * bool  (** [true] = IS NULL, [false] = IS NOT NULL *)
  | Like of expr * string

type aggregate = Count_star | Sum of string | Avg of string | Min of string | Max of string

type projection =
  | Star
  | Columns of (string option * string) list
  | Aggregate of aggregate

type order_direction = Asc | Desc

type select = {
  projection : projection;
  from_table : string;
  join : (string * (string option * string) * (string option * string)) option;
      (** JOIN table ON qualified-col = qualified-col *)
  where : expr option;
  group_by : string option;  (** grouped column; pairs with a COUNT star projection *)
  order_by : (string * order_direction) option;
  limit : int option;
}

type column_def = {
  col_name : string;
  col_type : Storage.Value.ty;
  nullable : bool;
  primary : bool;  (** column-level PRIMARY KEY marker *)
}

type stmt =
  | Select of select
  | Insert of { table : string; columns : string list option; values : expr list list }
  | Update of { table : string; set : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Create_table of {
      name : string;
      columns : column_def list;
      primary_key : string list;  (** table-level PRIMARY KEY (...) if given *)
      indexes : string list;  (** INDEX (col) constraints *)
    }
  | Begin
  | Commit
  | Rollback
  | Show_tables

val pp_stmt : Format.formatter -> stmt -> unit
(** Debug printer (not a SQL pretty-printer). *)

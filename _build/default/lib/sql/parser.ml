exception Parse_error of string

type state = { tokens : Lexer.token array; mutable pos : int }

let fail fmt = Format.kasprintf (fun msg -> raise (Parse_error msg)) fmt

let peek st = if st.pos < Array.length st.tokens then Some st.tokens.(st.pos) else None

let advance st = st.pos <- st.pos + 1

let next st =
  match peek st with
  | Some tok ->
    advance st;
    tok
  | None -> fail "unexpected end of statement"

let describe = function
  | Some tok -> Format.asprintf "%a" Lexer.pp_token tok
  | None -> "end of statement"

(* Keyword tests are case-insensitive on Word tokens. *)
let is_kw st kw =
  match peek st with
  | Some (Lexer.Word w) -> String.uppercase_ascii w = kw
  | Some _ | None -> false

let eat_kw st kw = if is_kw st kw then (advance st; true) else false

let expect_kw st kw =
  if not (eat_kw st kw) then fail "expected %s, found %s" kw (describe (peek st))

let expect st tok what =
  match peek st with
  | Some t when t = tok -> advance st
  | other -> fail "expected %s, found %s" what (describe other)

let ident st =
  match peek st with
  | Some (Lexer.Word w) ->
    advance st;
    w
  | other -> fail "expected identifier, found %s" (describe other)

let qualified st =
  let first = ident st in
  match peek st with
  | Some Lexer.Dot ->
    advance st;
    (Some first, ident st)
  | Some _ | None -> (None, first)

(* --- Expressions --- *)

let rec parse_or st =
  let left = parse_and st in
  if eat_kw st "OR" then Ast.Binop (Ast.Or, left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if eat_kw st "AND" then Ast.Binop (Ast.And, left, parse_and st) else left

and parse_not st =
  if eat_kw st "NOT" then Ast.Not (parse_not st) else parse_cmp st

and parse_cmp st =
  let left = parse_add st in
  match peek st with
  | Some (Lexer.Op (("=" | "<>" | "<" | "<=" | ">" | ">=") as op)) ->
    advance st;
    let right = parse_add st in
    let binop =
      match op with
      | "=" -> Ast.Eq
      | "<>" -> Ast.Ne
      | "<" -> Ast.Lt
      | "<=" -> Ast.Le
      | ">" -> Ast.Gt
      | _ -> Ast.Ge
    in
    Ast.Binop (binop, left, right)
  | Some (Lexer.Word w) when String.uppercase_ascii w = "LIKE" -> (
    advance st;
    match next st with
    | Lexer.String_lit pattern -> Ast.Like (left, pattern)
    | _ -> fail "LIKE expects a string literal pattern")
  | Some (Lexer.Word w) when String.uppercase_ascii w = "IS" ->
    advance st;
    let negated = eat_kw st "NOT" in
    expect_kw st "NULL";
    Ast.Is_null (left, not negated)
  | Some _ | None -> left

and parse_add st =
  let rec loop left =
    match peek st with
    | Some (Lexer.Op "+") ->
      advance st;
      loop (Ast.Binop (Ast.Add, left, parse_mul st))
    | Some (Lexer.Op "-") ->
      advance st;
      loop (Ast.Binop (Ast.Sub, left, parse_mul st))
    | Some (Lexer.Op "||") ->
      advance st;
      loop (Ast.Binop (Ast.Concat, left, parse_mul st))
    | Some _ | None -> left
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop left =
    match peek st with
    | Some Lexer.Star ->
      advance st;
      loop (Ast.Binop (Ast.Mul, left, parse_unary st))
    | Some _ | None -> left
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Some (Lexer.Op "-") ->
    advance st;
    (* Negate numerics directly when possible. *)
    (match parse_unary st with
    | Ast.Lit (Storage.Value.Int x) -> Ast.Lit (Storage.Value.Int (-x))
    | Ast.Lit (Storage.Value.Float x) -> Ast.Lit (Storage.Value.Float (-.x))
    | e -> Ast.Binop (Ast.Sub, Ast.Lit (Storage.Value.Int 0), e))
  | Some _ | None -> parse_primary st

and parse_primary st =
  match next st with
  | Lexer.Int_lit x -> Ast.Lit (Storage.Value.Int x)
  | Lexer.Float_lit x -> Ast.Lit (Storage.Value.Float x)
  | Lexer.String_lit s -> Ast.Lit (Storage.Value.Text s)
  | Lexer.Lparen ->
    let e = parse_or st in
    expect st Lexer.Rparen ")";
    e
  | Lexer.Word w -> (
    match String.uppercase_ascii w with
    | "NULL" -> Ast.Lit Storage.Value.Null
    | "TRUE" -> Ast.Lit (Storage.Value.Bool true)
    | "FALSE" -> Ast.Lit (Storage.Value.Bool false)
    | _ -> (
      match peek st with
      | Some Lexer.Dot ->
        advance st;
        Ast.Column (Some w, ident st)
      | Some _ | None -> Ast.Column (None, w)))
  | tok -> fail "unexpected token %s in expression" (Format.asprintf "%a" Lexer.pp_token tok)

(* --- Projections --- *)

type proj_item =
  | P_star
  | P_col of string option * string
  | P_agg of Ast.aggregate

let parse_agg st name =
  expect st Lexer.Lparen "(";
  let agg =
    match String.uppercase_ascii name with
    | "COUNT" ->
      expect st Lexer.Star "*";
      Ast.Count_star
    | "SUM" -> Ast.Sum (ident st)
    | "AVG" -> Ast.Avg (ident st)
    | "MIN" -> Ast.Min (ident st)
    | "MAX" -> Ast.Max (ident st)
    | other -> fail "unknown aggregate function %s" other
  in
  expect st Lexer.Rparen ")";
  agg

let parse_proj_item st =
  match peek st with
  | Some Lexer.Star ->
    advance st;
    P_star
  | Some (Lexer.Word w)
    when List.mem (String.uppercase_ascii w) [ "COUNT"; "SUM"; "AVG"; "MIN"; "MAX" ] ->
    advance st;
    P_agg (parse_agg st w)
  | Some _ | None ->
    let q, c = qualified st in
    P_col (q, c)

let parse_projection st =
  let rec items acc =
    let item = parse_proj_item st in
    if peek st = Some Lexer.Comma then begin
      advance st;
      items (item :: acc)
    end
    else List.rev (item :: acc)
  in
  match items [] with
  | [ P_star ] -> Ast.Star
  | [ P_agg a ] -> Ast.Aggregate a
  | [ P_col (q, c); P_agg Ast.Count_star ] -> Ast.Columns [ (q, c) ]  (* GROUP BY shape *)
  | parts ->
    Ast.Columns
      (List.map
         (function
           | P_col (q, c) -> (q, c)
           | P_star -> fail "* cannot be mixed with other projections"
           | P_agg _ -> fail "aggregates cannot be mixed with plain columns")
         parts)

(* --- Statements --- *)

let parse_select st =
  let projection = parse_projection st in
  expect_kw st "FROM";
  let from_table = ident st in
  let join =
    if eat_kw st "JOIN" then begin
      let table = ident st in
      expect_kw st "ON";
      let left = qualified st in
      (match next st with
      | Lexer.Op "=" -> ()
      | _ -> fail "JOIN condition must be an equality");
      let right = qualified st in
      Some (table, left, right)
    end
    else None
  in
  let where = if eat_kw st "WHERE" then Some (parse_or st) else None in
  let group_by =
    if eat_kw st "GROUP" then begin
      expect_kw st "BY";
      Some (ident st)
    end
    else None
  in
  let order_by =
    if eat_kw st "ORDER" then begin
      expect_kw st "BY";
      let col = ident st in
      let dir =
        if eat_kw st "DESC" then Ast.Desc
        else begin
          ignore (eat_kw st "ASC");
          Ast.Asc
        end
      in
      Some (col, dir)
    end
    else None
  in
  let limit =
    if eat_kw st "LIMIT" then begin
      match next st with
      | Lexer.Int_lit n when n >= 0 -> Some n
      | _ -> fail "LIMIT expects a non-negative integer"
    end
    else None
  in
  Ast.Select { projection; from_table; join; where; group_by; order_by; limit }

let parse_insert st =
  expect_kw st "INTO";
  let table = ident st in
  let columns =
    if peek st = Some Lexer.Lparen then begin
      advance st;
      let rec cols acc =
        let c = ident st in
        if peek st = Some Lexer.Comma then begin
          advance st;
          cols (c :: acc)
        end
        else begin
          expect st Lexer.Rparen ")";
          List.rev (c :: acc)
        end
      in
      Some (cols [])
    end
    else None
  in
  expect_kw st "VALUES";
  let tuple () =
    expect st Lexer.Lparen "(";
    let rec vals acc =
      let v = parse_or st in
      if peek st = Some Lexer.Comma then begin
        advance st;
        vals (v :: acc)
      end
      else begin
        expect st Lexer.Rparen ")";
        List.rev (v :: acc)
      end
    in
    vals []
  in
  let rec tuples acc =
    let t = tuple () in
    if peek st = Some Lexer.Comma then begin
      advance st;
      tuples (t :: acc)
    end
    else List.rev (t :: acc)
  in
  Ast.Insert { table; columns; values = tuples [] }

let parse_update st =
  let table = ident st in
  expect_kw st "SET";
  let rec assignments acc =
    let col = ident st in
    (match next st with
    | Lexer.Op "=" -> ()
    | _ -> fail "expected = in SET clause");
    let e = parse_or st in
    if peek st = Some Lexer.Comma then begin
      advance st;
      assignments ((col, e) :: acc)
    end
    else List.rev ((col, e) :: acc)
  in
  let set = assignments [] in
  let where = if eat_kw st "WHERE" then Some (parse_or st) else None in
  Ast.Update { table; set; where }

let parse_delete st =
  expect_kw st "FROM";
  let table = ident st in
  let where = if eat_kw st "WHERE" then Some (parse_or st) else None in
  Ast.Delete { table; where }

let parse_type st =
  let base = String.uppercase_ascii (ident st) in
  let ty =
    match base with
    | "INT" | "INTEGER" | "BIGINT" -> Storage.Value.Tint
    | "FLOAT" | "REAL" | "DOUBLE" -> Storage.Value.Tfloat
    | "TEXT" | "VARCHAR" | "CHAR" | "STRING" -> Storage.Value.Ttext
    | "BOOL" | "BOOLEAN" -> Storage.Value.Tbool
    | other -> fail "unknown column type %s" other
  in
  (* Optional length parameter, e.g. VARCHAR(100), is accepted and
     ignored (lengths are not enforced). *)
  if peek st = Some Lexer.Lparen then begin
    advance st;
    (match next st with Lexer.Int_lit _ -> () | _ -> fail "expected a length");
    expect st Lexer.Rparen ")"
  end;
  ty

let parse_create st =
  expect_kw st "TABLE";
  let name = ident st in
  expect st Lexer.Lparen "(";
  let columns = ref [] in
  let primary_key = ref [] in
  let indexes = ref [] in
  let parse_entry () =
    if is_kw st "PRIMARY" then begin
      advance st;
      expect_kw st "KEY";
      expect st Lexer.Lparen "(";
      let rec cols acc =
        let c = ident st in
        if peek st = Some Lexer.Comma then begin
          advance st;
          cols (c :: acc)
        end
        else begin
          expect st Lexer.Rparen ")";
          List.rev (c :: acc)
        end
      in
      primary_key := cols []
    end
    else if is_kw st "INDEX" then begin
      advance st;
      expect st Lexer.Lparen "(";
      indexes := !indexes @ [ ident st ];
      expect st Lexer.Rparen ")"
    end
    else begin
      let col_name = ident st in
      let col_type = parse_type st in
      let nullable = ref true in
      let primary = ref false in
      let rec flags () =
        if is_kw st "NOT" then begin
          advance st;
          expect_kw st "NULL";
          nullable := false;
          flags ()
        end
        else if is_kw st "PRIMARY" then begin
          advance st;
          expect_kw st "KEY";
          primary := true;
          nullable := false;
          flags ()
        end
      in
      flags ();
      columns :=
        !columns @ [ { Ast.col_name; col_type; nullable = !nullable; primary = !primary } ]
    end
  in
  let rec entries () =
    parse_entry ();
    if peek st = Some Lexer.Comma then begin
      advance st;
      entries ()
    end
    else expect st Lexer.Rparen ")"
  in
  entries ();
  Ast.Create_table { name; columns = !columns; primary_key = !primary_key; indexes = !indexes }

let parse_stmt st =
  match next st with
  | Lexer.Word w -> (
    match String.uppercase_ascii w with
    | "SELECT" -> parse_select st
    | "INSERT" -> parse_insert st
    | "UPDATE" -> parse_update st
    | "DELETE" -> parse_delete st
    | "CREATE" -> parse_create st
    | "BEGIN" | "START" ->
      ignore (eat_kw st "TRANSACTION");
      Ast.Begin
    | "COMMIT" -> Ast.Commit
    | "ROLLBACK" | "ABORT" -> Ast.Rollback
    | "SHOW" ->
      expect_kw st "TABLES";
      Ast.Show_tables
    | other -> fail "unknown statement %s" other)
  | tok -> fail "expected a statement, found %s" (Format.asprintf "%a" Lexer.pp_token tok)

let parse input =
  match Lexer.tokenize input with
  | Error msg -> Error msg
  | Ok tokens -> (
    let st = { tokens = Array.of_list tokens; pos = 0 } in
    try
      let stmt = parse_stmt st in
      (match peek st with
      | Some Lexer.Semi -> advance st
      | Some _ | None -> ());
      match peek st with
      | None -> Ok stmt
      | Some tok -> Error (Printf.sprintf "trailing input: %s" (Format.asprintf "%a" Lexer.pp_token tok))
    with Parse_error msg -> Error msg)

let parse_script input =
  match Lexer.tokenize input with
  | Error msg -> Error msg
  | Ok tokens -> (
    let st = { tokens = Array.of_list tokens; pos = 0 } in
    try
      let rec loop acc =
        match peek st with
        | None -> Ok (List.rev acc)
        | Some Lexer.Semi ->
          advance st;
          loop acc
        | Some _ ->
          let stmt = parse_stmt st in
          (match peek st with
          | Some Lexer.Semi -> advance st
          | Some tok ->
            fail "expected ; between statements, found %s"
              (Format.asprintf "%a" Lexer.pp_token tok)
          | None -> ());
          loop (stmt :: acc)
      in
      loop []
    with Parse_error msg -> Error msg)

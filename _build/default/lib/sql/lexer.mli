(** SQL tokenizer.

    Identifiers and keywords are lexed as {!Word} (the parser decides
    which words are keywords, case-insensitively). String literals use
    single quotes with [''] escaping; [--] comments run to end of line. *)

type token =
  | Word of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Semi
  | Op of string  (** = <> != < <= > >= + - || *)

val tokenize : string -> (token list, string) result
(** Empty input yields an empty list. The error carries a character
    position. *)

val pp_token : Format.formatter -> token -> unit

(** Compile and execute SQL statements against a {!Storage.Txn.t}.

    Name resolution, type construction for CREATE TABLE, and the mapping
    of SELECT shapes onto the query engine (point/index/range selects,
    joins, aggregates, grouping) live here; {!Session} adds transaction
    control on top. *)

type result = {
  columns : string list;  (** header for the result rows *)
  rows : Storage.Value.t array list;
  affected : int;  (** rows written (0 for queries) *)
}

val empty_result : result

val schema_of_create :
  name:string ->
  columns:Ast.column_def list ->
  primary_key:string list ->
  indexes:string list ->
  (Storage.Schema.t, string) Stdlib.result
(** Build a schema from a CREATE TABLE statement; errors on a missing
    primary key or duplicate/unknown columns. *)

val run_dml : Storage.Txn.t -> Ast.stmt -> (result, string) Stdlib.result
(** Execute SELECT / INSERT / UPDATE / DELETE. Other statement kinds are
    an error here (handled by {!Session}). *)

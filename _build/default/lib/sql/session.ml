type t = {
  db : Storage.Database.t;
  mutable txn : Storage.Txn.t option;
}

let create () = { db = Storage.Database.create (); txn = None }

let of_database db = { db; txn = None }

let database t = t.db

let in_transaction t = t.txn <> None

let run_stmt t stmt =
  match stmt with
  | Ast.Begin ->
    if t.txn <> None then Error "already in a transaction"
    else begin
      t.txn <- Some (Storage.Txn.begin_ t.db);
      Ok Compile.empty_result
    end
  | Ast.Commit -> (
    match t.txn with
    | None -> Error "no open transaction"
    | Some txn -> (
      t.txn <- None;
      match Storage.Txn.commit_standalone txn with
      | Ok _version -> Ok Compile.empty_result
      | Error msg -> Error ("commit failed: " ^ msg)))
  | Ast.Rollback ->
    if t.txn = None then Error "no open transaction"
    else begin
      (* Buffered writes are simply dropped. *)
      t.txn <- None;
      Ok Compile.empty_result
    end
  | Ast.Show_tables ->
    Ok
      {
        Compile.columns = [ "table"; "rows" ];
        rows =
          List.map
            (fun name ->
              let table = Storage.Database.table t.db name in
              [|
                Storage.Value.Text name;
                Storage.Value.Int
                  (Storage.Table.row_count table ~at:(Storage.Database.version t.db));
              |])
            (Storage.Database.table_names t.db);
        affected = 0;
      }
  | Ast.Create_table { name; columns; primary_key; indexes } -> (
    if t.txn <> None then Error "CREATE TABLE inside a transaction is not supported"
    else
      match Compile.schema_of_create ~name ~columns ~primary_key ~indexes with
      | Error msg -> Error msg
      | Ok schema -> (
        match Storage.Database.create_table t.db schema with
        | _ -> Ok Compile.empty_result
        | exception Invalid_argument msg -> Error msg))
  | Ast.Select _ | Ast.Insert _ | Ast.Update _ | Ast.Delete _ -> (
    match t.txn with
    | Some txn -> Compile.run_dml txn stmt
    | None -> (
      (* Auto-commit: run in a fresh transaction and commit it. *)
      let txn = Storage.Txn.begin_ t.db in
      match Compile.run_dml txn stmt with
      | Error _ as e -> e
      | Ok result -> (
        match Storage.Txn.commit_standalone txn with
        | Ok _ -> Ok result
        | Error msg -> Error ("commit failed: " ^ msg))))

let exec t input =
  match Parser.parse input with
  | Error msg -> Error msg
  | Ok stmt -> run_stmt t stmt

let exec_script t input =
  match Parser.parse_script input with
  | Error msg -> Error msg
  | Ok stmts ->
    let rec loop acc = function
      | [] -> Ok (List.rev acc)
      | stmt :: rest -> (
        match run_stmt t stmt with
        | Error msg -> Error msg
        | Ok r -> loop (r :: acc) rest)
    in
    loop [] stmts

let render (result : Compile.result) =
  if result.Compile.columns = [] then
    if result.Compile.affected > 0 then
      Printf.sprintf "%d row(s) affected\n" result.Compile.affected
    else "ok\n"
  else begin
    let cells = List.map (Array.to_list) result.Compile.rows in
    let to_strings row = List.map Storage.Value.to_string row in
    let all = result.Compile.columns :: List.map to_strings cells in
    let columns = List.length result.Compile.columns in
    let width c =
      List.fold_left
        (fun acc row ->
          match List.nth_opt row c with Some s -> max acc (String.length s) | None -> acc)
        0 all
    in
    let widths = List.init columns width in
    let render_row row =
      "| "
      ^ String.concat " | "
          (List.mapi
             (fun c w -> Printf.sprintf "%-*s" w (Option.value (List.nth_opt row c) ~default:""))
             widths)
      ^ " |"
    in
    let rule =
      "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
    in
    String.concat "\n"
      ((rule :: render_row result.Compile.columns :: rule
       :: List.map (fun row -> render_row (to_strings row)) cells)
      @ [ rule; Printf.sprintf "%d row(s)" (List.length cells); "" ])
  end

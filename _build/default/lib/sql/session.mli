(** A SQL session over a standalone database: statement execution with
    transaction control.

    Outside an explicit BEGIN ... COMMIT block, each DML statement runs
    in its own auto-committed transaction. COMMIT validates under
    first-committer-wins ({!Storage.Txn.commit_standalone}), so two
    sessions over the same database exhibit snapshot-isolation
    semantics. *)

type t

val create : unit -> t
(** A session over a fresh empty database. *)

val of_database : Storage.Database.t -> t
(** Share an existing database (multiple sessions may share one). *)

val database : t -> Storage.Database.t

val in_transaction : t -> bool

val exec : t -> string -> (Compile.result, string) result
(** Parse and execute one statement. *)

val exec_script : t -> string -> (Compile.result list, string) result
(** Execute a semicolon-separated script, stopping at the first error. *)

val render : Compile.result -> string
(** Pretty-print a result: an aligned table for queries, a row count for
    writes, "ok" otherwise. *)

type token =
  | Word of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Semi
  | Op of string

let pp_token ppf = function
  | Word w -> Format.pp_print_string ppf w
  | Int_lit i -> Format.pp_print_int ppf i
  | Float_lit f -> Format.fprintf ppf "%g" f
  | String_lit s -> Format.fprintf ppf "'%s'" s
  | Lparen -> Format.pp_print_char ppf '('
  | Rparen -> Format.pp_print_char ppf ')'
  | Comma -> Format.pp_print_char ppf ','
  | Dot -> Format.pp_print_char ppf '.'
  | Star -> Format.pp_print_char ppf '*'
  | Semi -> Format.pp_print_char ppf ';'
  | Op op -> Format.pp_print_string ppf op

let is_word_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_word_char c = is_word_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit tok = tokens := tok :: !tokens in
  let error = ref None in
  let fail pos msg = error := Some (Printf.sprintf "%s at position %d" msg pos) in
  let i = ref 0 in
  while !i < n && !error = None do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '-' then begin
      (* Comment to end of line. *)
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if is_word_start c then begin
      let start = !i in
      while !i < n && is_word_char input.[!i] do
        incr i
      done;
      emit (Word (String.sub input start (!i - start)))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      (* Fractional part: a dot followed by a digit (a bare dot is the
         qualification operator). *)
      if !i + 1 < n && input.[!i] = '.' && is_digit input.[!i + 1] then begin
        incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done;
        match float_of_string_opt (String.sub input start (!i - start)) with
        | Some f -> emit (Float_lit f)
        | None -> fail start "malformed float literal"
      end
      else begin
        match int_of_string_opt (String.sub input start (!i - start)) with
        | Some x -> emit (Int_lit x)
        | None -> fail start "malformed integer literal"
      end
    end
    else if c = '\'' then begin
      (* String literal; '' escapes a quote. *)
      let buf = Buffer.create 16 in
      let start = !i in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n && !error = None do
        if input.[!i] = '\'' then
          if !i + 1 < n && input.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      if !closed then emit (String_lit (Buffer.contents buf))
      else fail start "unterminated string literal"
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub input !i 2) else None
      in
      match two with
      | Some (("<=" | ">=" | "<>" | "!=" | "||") as op) ->
        emit (Op (if op = "!=" then "<>" else op));
        i := !i + 2
      | _ -> (
        incr i;
        match c with
        | '(' -> emit Lparen
        | ')' -> emit Rparen
        | ',' -> emit Comma
        | '.' -> emit Dot
        | '*' -> emit Star
        | ';' -> emit Semi
        | '=' | '<' | '>' | '+' | '-' -> emit (Op (String.make 1 c))
        | _ -> fail (!i - 1) (Printf.sprintf "unexpected character %C" c))
    end
  done;
  match !error with Some msg -> Error msg | None -> Ok (List.rev !tokens)

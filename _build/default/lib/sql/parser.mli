(** Recursive-descent SQL parser. *)

val parse : string -> (Ast.stmt, string) result
(** Parse exactly one statement (a trailing semicolon is allowed). *)

val parse_script : string -> (Ast.stmt list, string) result
(** Parse a semicolon-separated sequence of statements. *)

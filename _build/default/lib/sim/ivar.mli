(** Single-assignment synchronization variable (future/promise).

    Used for request/reply interactions: the requester blocks in {!read}
    until the responder calls {!fill}. *)

type 'a t

val create : Engine.t -> 'a t

val fill : 'a t -> 'a -> unit
(** Set the value and wake all readers. Raises [Invalid_argument] if
    already filled. *)

val read : 'a t -> 'a
(** Return the value, blocking the calling process until {!fill}. *)

val is_filled : 'a t -> bool

val peek : 'a t -> 'a option

lib/sim/process.ml: Effect Engine Printexc Printf

lib/sim/engine.ml: Util

lib/sim/network.ml: Engine Process Util

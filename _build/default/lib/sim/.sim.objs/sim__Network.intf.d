lib/sim/network.mli: Engine Util

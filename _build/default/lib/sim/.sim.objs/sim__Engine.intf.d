lib/sim/engine.mli:

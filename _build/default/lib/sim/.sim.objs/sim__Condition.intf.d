lib/sim/condition.mli: Engine

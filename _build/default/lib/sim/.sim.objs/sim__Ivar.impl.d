lib/sim/ivar.ml: Engine Process Queue

type 'a state =
  | Empty of ('a -> unit) Queue.t
  | Filled of 'a

type 'a t = { engine : Engine.t; mutable state : 'a state }

let create engine = { engine; state = Empty (Queue.create ()) }

let fill t value =
  match t.state with
  | Filled _ -> invalid_arg "Ivar.fill: already filled"
  | Empty waiters ->
    t.state <- Filled value;
    Queue.iter
      (fun waiter -> Engine.schedule t.engine ~delay:0.0 (fun () -> waiter value))
      waiters

let read t =
  match t.state with
  | Filled value -> value
  | Empty waiters ->
    let slot = ref None in
    Process.suspend (fun resume ->
        Queue.add
          (fun value ->
            slot := Some value;
            resume ())
          waiters);
    (match !slot with
    | Some value -> value
    | None -> assert false)

let is_filled t = match t.state with Filled _ -> true | Empty _ -> false

let peek t = match t.state with Filled v -> Some v | Empty _ -> None

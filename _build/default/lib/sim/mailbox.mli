(** Unbounded FIFO message queue with blocking receive.

    Senders never block. Multiple processes may block in {!recv}; they
    are woken in FIFO order as messages arrive. *)

type 'a t

val create : Engine.t -> 'a t

val send : 'a t -> 'a -> unit
(** Enqueue a message; wakes the longest-waiting receiver, if any. The
    receiver resumes at the current virtual instant but after the
    sender's event completes. *)

val recv : 'a t -> 'a
(** Dequeue a message, blocking the calling process until one is
    available. Must be called from within a process. *)

val try_recv : 'a t -> 'a option
(** Non-blocking receive. *)

val length : 'a t -> int
(** Messages currently queued (excluding waiting receivers). *)

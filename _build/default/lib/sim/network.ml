type t = {
  engine : Engine.t;
  rng : Util.Rng.t;
  base_ms : float;
  jitter_ms : float;
  bandwidth_mbps : float;
  mutable messages : int;
  mutable bytes : int;
}

let create engine ~rng ~base_ms ~jitter_ms ~bandwidth_mbps =
  { engine; rng; base_ms; jitter_ms; bandwidth_mbps; messages = 0; bytes = 0 }

let latency t ~size_bytes =
  let jitter = if t.jitter_ms > 0.0 then Util.Rng.float t.rng t.jitter_ms else 0.0 in
  let transmission =
    if t.bandwidth_mbps > 0.0 then
      (* bits / (Mbit/s) = microseconds; convert to ms. *)
      float_of_int (size_bytes * 8) /. (t.bandwidth_mbps *. 1000.0)
    else 0.0
  in
  t.base_ms +. jitter +. transmission

let record t size_bytes =
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + size_bytes

let send t ~size_bytes callback =
  record t size_bytes;
  Engine.schedule t.engine ~delay:(latency t ~size_bytes) callback

let transfer t ~size_bytes =
  record t size_bytes;
  Process.sleep t.engine (latency t ~size_bytes)

let messages_sent t = t.messages

let bytes_sent t = t.bytes

(* Processes are one-shot delimited continuations: [suspend] performs an
   effect carrying a registration callback; the handler captures the
   continuation and hands the registrar a [resume] closure. All blocking
   primitives (sleep, mailbox receive, resource acquire) reduce to this. *)

open Effect
open Effect.Deep

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let suspend register = perform (Suspend register)

let spawn engine body =
  let handler =
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          (* Surface the failing process's own backtrace: the engine's
             re-raise would otherwise mask where the exception arose. *)
          if Printexc.backtrace_status () then
            Printf.eprintf "simulation process died: %s\n%s%!" (Printexc.to_string e)
              (Printexc.get_backtrace ());
          raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                register (fun () -> continue k ()))
          | _ -> None);
    }
  in
  Engine.schedule engine ~delay:0.0 (fun () -> match_with body () handler)

let sleep engine duration =
  suspend (fun resume -> Engine.schedule engine ~delay:duration resume)

let yield engine = sleep engine 0.0

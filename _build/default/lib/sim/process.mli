(** Lightweight simulation processes built on OCaml effect handlers.

    A process is ordinary sequential code that may block on virtual time
    ({!sleep}) or on synchronization primitives ({!Mailbox}, {!Ivar},
    {!Resource}), all implemented on top of the single {!suspend}
    primitive. Blocking suspends only the calling process; the simulation
    engine keeps running other events. *)

val spawn : Engine.t -> (unit -> unit) -> unit
(** [spawn engine body] schedules [body] to start at the current virtual
    time. An exception escaping [body] aborts the whole simulation run
    (it propagates out of {!Engine.run}). *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the calling process and calls
    [register resume]. The process continues when [resume ()] is called;
    [resume] must be called exactly once. Must be called from within a
    process. *)

val sleep : Engine.t -> float -> unit
(** Block the calling process for the given virtual duration (ms). *)

val yield : Engine.t -> unit
(** Re-schedule the calling process at the current time, letting other
    events at this instant run first. *)

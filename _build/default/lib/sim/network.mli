(** Point-to-point network latency model.

    Message delay = [base] + uniform jitter + size / bandwidth. The
    cluster in the paper is a single Gigabit Ethernet switch, so one
    shared latency model covers every pair of hosts. *)

type t

val create :
  Engine.t -> rng:Util.Rng.t -> base_ms:float -> jitter_ms:float -> bandwidth_mbps:float -> t

val latency : t -> size_bytes:int -> float
(** Sample the one-way delay for a message of the given size. *)

val send : t -> size_bytes:int -> (unit -> unit) -> unit
(** Fire-and-forget delivery: run the callback after a sampled delay. *)

val transfer : t -> size_bytes:int -> unit
(** Block the calling process for one sampled message delay. *)

val messages_sent : t -> int

val bytes_sent : t -> int

type 'a t = {
  engine : Engine.t;
  messages : 'a Queue.t;
  waiters : ('a -> unit) Queue.t;
}

let create engine = { engine; messages = Queue.create (); waiters = Queue.create () }

let send t msg =
  match Queue.take_opt t.waiters with
  | Some waiter ->
    (* Resume through the engine so the sender's event finishes first;
       run-to-completion keeps component state transitions atomic. *)
    Engine.schedule t.engine ~delay:0.0 (fun () -> waiter msg)
  | None -> Queue.add msg t.messages

let recv t =
  match Queue.take_opt t.messages with
  | Some msg -> msg
  | None ->
    let slot = ref None in
    Process.suspend (fun resume ->
        Queue.add
          (fun msg ->
            slot := Some msg;
            resume ())
          t.waiters);
    (match !slot with
    | Some msg -> msg
    | None -> assert false)

let try_recv t = Queue.take_opt t.messages

let length t = Queue.length t.messages

type t = { engine : Engine.t; mutable queue : (unit -> unit) list }

let create engine = { engine; queue = [] }

let rec await t pred =
  if not (pred ()) then begin
    Process.suspend (fun resume -> t.queue <- resume :: t.queue);
    await t pred
  end

let broadcast t =
  let waiting = List.rev t.queue in
  t.queue <- [];
  List.iter (fun resume -> Engine.schedule t.engine ~delay:0.0 resume) waiting

let waiters t = List.length t.queue

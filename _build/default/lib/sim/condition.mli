(** Broadcast condition variable with predicate-based waiting.

    {!await} re-checks its predicate each time the condition is
    signalled, so state transitions guarded by {!broadcast} never lose
    wake-ups. Used by replica proxies to wait for "local version >= v". *)

type t

val create : Engine.t -> t

val await : t -> (unit -> bool) -> unit
(** [await c pred] returns immediately if [pred ()]; otherwise blocks the
    calling process and re-evaluates [pred] after every {!broadcast},
    returning once it holds. *)

val broadcast : t -> unit
(** Wake all waiting processes so they re-check their predicates. *)

val waiters : t -> int

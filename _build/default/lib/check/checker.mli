(** Consistency checkers over abstract {!History.t} values.

    These implement the paper's §II definitions on small histories:

    - {!serializable}: exists a serial single-copy history view-equivalent
      to the input (brute-force over permutations of committed
      transactions — intended for unit-test-sized histories).
    - {!snapshot_consistent}: exists a multiversion single-copy history
      view-equivalent to the input: every transaction reads from a
      snapshot that is a prefix of the (real-time) commit order.
      The [mode] strengthens which prefix is acceptable:
      {ul
      {- [`Any]: any prefix not beyond the transaction's own commit —
         plain GSI-style legality;}
      {- [`Session sess]: the prefix must include every transaction of
         the {e same session} that committed before this one began
         (Definition 2, session consistency);}
      {- [`Strong]: the prefix must include {e every} transaction that
         committed before this one began (Definition 1, strong
         consistency).}}
    - {!first_committer_wins}: no two committed transactions with
      intersecting write sets where one commits inside the other's
      (snapshot, commit] window — the SI/GSI write-conflict rule, using
      the real-time positions as snapshot points. *)

type mode = [ `Any | `Session of History.tx -> int | `Strong ]

val serializable : History.t -> bool

val snapshot_consistent : mode:mode -> History.t -> bool

val strongly_consistent : History.t -> bool
(** [snapshot_consistent ~mode:`Strong]. *)

val session_consistent : session:(History.tx -> int) -> History.t -> bool

val first_committer_wins : History.t -> bool

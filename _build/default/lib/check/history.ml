type tx = int
type item = string

type op =
  | Begin of tx
  | Read of tx * item * int
  | Write of tx * item * int
  | Commit of tx
  | Abort of tx

type t = op list

let tx_of = function
  | Begin t | Read (t, _, _) | Write (t, _, _) | Commit t | Abort t -> t

let committed h =
  List.filter_map (function Commit t -> Some t | _ -> None) h

let well_formed h =
  let started = Hashtbl.create 8 in
  let finished = Hashtbl.create 8 in
  let check op =
    let t = tx_of op in
    match op with
    | Begin _ ->
      if Hashtbl.mem started t then Error (Printf.sprintf "T%d begins twice" t)
      else begin
        Hashtbl.add started t ();
        Ok ()
      end
    | Commit _ | Abort _ ->
      if not (Hashtbl.mem started t) then
        Error (Printf.sprintf "T%d terminates before beginning" t)
      else if Hashtbl.mem finished t then
        Error (Printf.sprintf "T%d terminates twice" t)
      else begin
        Hashtbl.add finished t ();
        Ok ()
      end
    | Read _ | Write _ ->
      if not (Hashtbl.mem started t) then
        Error (Printf.sprintf "T%d operates before beginning" t)
      else if Hashtbl.mem finished t then
        Error (Printf.sprintf "T%d operates after terminating" t)
      else Ok ()
  in
  List.fold_left
    (fun acc op -> match acc with Error _ -> acc | Ok () -> check op)
    (Ok ()) h

let reads_of h t =
  List.filter_map (function Read (t', i, v) when t' = t -> Some (i, v) | _ -> None) h

let writes_of h t =
  List.filter_map (function Write (t', i, v) when t' = t -> Some (i, v) | _ -> None) h

let commits_before_begin h =
  (* Walk the history; when T begins, every already-committed transaction
     precedes it in real time. *)
  let committed_so_far = ref [] in
  let pairs = ref [] in
  let all_committed = committed h in
  List.iter
    (fun op ->
      match op with
      | Commit t -> committed_so_far := t :: !committed_so_far
      | Begin t when List.mem t all_committed ->
        List.iter (fun ti -> pairs := (ti, t) :: !pairs) !committed_so_far
      | Begin _ | Read _ | Write _ | Abort _ -> ())
    h;
  List.rev !pairs

let pp ppf h =
  let pp_op ppf = function
    | Begin t -> Format.fprintf ppf "B%d" t
    | Read (t, i, v) -> Format.fprintf ppf "R%d(%s=%d)" t i v
    | Write (t, i, v) -> Format.fprintf ppf "W%d(%s=%d)" t i v
    | Commit t -> Format.fprintf ppf "C%d" t
    | Abort t -> Format.fprintf ppf "A%d" t
  in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_op)
    h

type mode = [ `Any | `Session of History.tx -> int | `Strong ]

(* Program-order operations of one transaction. *)
let ops_of h t =
  List.filter
    (function
      | History.Read (t', _, _) | History.Write (t', _, _) -> t' = t
      | History.Begin _ | History.Commit _ | History.Abort _ -> false)
    h

(* Replay [txs] serially from the all-zero initial state; check that every
   read observes what the serial execution would produce. *)
let serial_consistent h txs =
  let state : (History.item, int) Hashtbl.t = Hashtbl.create 8 in
  let lookup tbl item = Option.value (Hashtbl.find_opt tbl item) ~default:0 in
  let run_tx t =
    let local = Hashtbl.create 4 in
    let ok =
      List.for_all
        (function
          | History.Read (_, item, v) ->
            let expected =
              match Hashtbl.find_opt local item with
              | Some v' -> v'
              | None -> lookup state item
            in
            expected = v
          | History.Write (_, item, v) ->
            Hashtbl.replace local item v;
            true
          | History.Begin _ | History.Commit _ | History.Abort _ -> true)
        (ops_of h t)
    in
    if ok then Hashtbl.iter (fun item v -> Hashtbl.replace state item v) local;
    ok
  in
  List.for_all run_tx txs

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let serializable h =
  let txs = History.committed h in
  List.exists (fun order -> serial_consistent h order) (permutations txs)

(* State of the database after the first [k] transactions of the commit
   order have been applied. *)
let state_after_prefix h commit_order k =
  let state = Hashtbl.create 8 in
  List.iteri
    (fun i t ->
      if i < k then
        List.iter
          (fun (item, v) -> Hashtbl.replace state item v)
          (History.writes_of h t))
    commit_order;
  state

(* Number of commit events preceding T's begin, and the largest commit
   position among same-session predecessors — both are prefixes of the
   commit order because commit events are totally ordered in time. *)
let begin_horizon h t =
  let rec walk count = function
    | [] -> count
    | History.Begin t' :: _ when t' = t -> count
    | History.Commit _ :: rest -> walk (count + 1) rest
    | _ :: rest -> walk count rest
  in
  walk 0 h

let session_horizon h session t =
  let own = session t in
  let rec walk pos best = function
    | [] -> best
    | History.Begin t' :: _ when t' = t -> best
    | History.Commit tc :: rest ->
      let best = if session tc = own then pos + 1 else best in
      walk (pos + 1) best rest
    | _ :: rest -> walk pos best rest
  in
  walk 0 0 h

let snapshot_consistent ~mode h =
  let commit_order = History.committed h in
  let position t =
    let rec find i = function
      | [] -> invalid_arg "not committed"
      | x :: rest -> if x = t then i else find (i + 1) rest
    in
    find 0 commit_order
  in
  (* Each transaction's reads depend only on its own snapshot prefix, so
     each can be validated independently. *)
  List.for_all
    (fun t ->
      let hi = begin_horizon h t in
      let lo =
        match mode with
        | `Any -> 0
        | `Strong -> hi
        | `Session session -> session_horizon h session t
      in
      let hi = min hi (position t) in
      if lo > hi then false
      else begin
        let reads_ok k =
          let state = state_after_prefix h commit_order k in
          let local = Hashtbl.create 4 in
          List.for_all
            (function
              | History.Read (_, item, v) ->
                let expected =
                  match Hashtbl.find_opt local item with
                  | Some v' -> v'
                  | None -> Option.value (Hashtbl.find_opt state item) ~default:0
                in
                expected = v
              | History.Write (_, item, v) ->
                Hashtbl.replace local item v;
                true
              | History.Begin _ | History.Commit _ | History.Abort _ -> true)
            (ops_of h t)
        in
        let rec try_k k = k <= hi && (reads_ok k || try_k (k + 1)) in
        try_k lo
      end)
    commit_order

let strongly_consistent h = snapshot_consistent ~mode:`Strong h

let session_consistent ~session h = snapshot_consistent ~mode:(`Session session) h

let first_committer_wins h =
  let committed = History.committed h in
  let index_of pred =
    let rec find i = function
      | [] -> None
      | op :: rest -> if pred op then Some i else find (i + 1) rest
    in
    find 0 h
  in
  let window t =
    match
      ( index_of (function History.Begin t' -> t' = t | _ -> false),
        index_of (function History.Commit t' -> t' = t | _ -> false) )
    with
    | Some b, Some c -> (b, c)
    | _ -> invalid_arg "first_committer_wins: malformed history"
  in
  let write_items t = List.map fst (History.writes_of h t) in
  let conflict ti tj =
    let wi = write_items ti and wj = write_items tj in
    List.exists (fun x -> List.mem x wj) wi
  in
  let concurrent ti tj =
    let bi, ci = window ti and bj, cj = window tj in
    bi < cj && bj < ci
  in
  let rec pairs = function
    | [] -> true
    | ti :: rest ->
      List.for_all (fun tj -> not (concurrent ti tj && conflict ti tj)) rest
      && pairs rest
  in
  pairs committed

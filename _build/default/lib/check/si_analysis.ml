type profile = {
  name : string;
  reads : string list;
  writes : string list;
}

let profile ~name ?(reads = []) ?(writes = []) () =
  (* An SI update reads the version it overwrites. *)
  let reads = List.sort_uniq compare (reads @ writes) in
  { name; reads; writes = List.sort_uniq compare writes }

type edge = {
  src : string;
  dst : string;
  kind : [ `Rw | `Ww | `Wr ];
  item : string;
}

let intersect_witness a b = List.find_opt (fun x -> List.mem x b) a

let edges profiles =
  let out = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a.name <> b.name then begin
            (* a reads an item b writes: rw anti-dependency a -> b. *)
            (match intersect_witness a.reads b.writes with
            | Some item -> out := { src = a.name; dst = b.name; kind = `Rw; item } :: !out
            | None -> ());
            (* a writes an item b writes: ww a -> b (one direction per
               ordered pair; the reverse pair adds the other). *)
            (match intersect_witness a.writes b.writes with
            | Some item -> out := { src = a.name; dst = b.name; kind = `Ww; item } :: !out
            | None -> ());
            (* a writes an item b reads: wr a -> b. *)
            match intersect_witness a.writes b.reads with
            | Some item -> out := { src = a.name; dst = b.name; kind = `Wr; item } :: !out
            | None -> ()
          end)
        profiles)
    profiles;
  List.rev !out

type dangerous = {
  pivot : string;
  in_rw : edge;
  out_rw : edge;
}

(* Reachability over all dependency edges. *)
let reachable edges ~from ~target =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let l = Option.value (Hashtbl.find_opt adj e.src) ~default:[] in
      Hashtbl.replace adj e.src (e.dst :: l))
    edges;
  let visited = Hashtbl.create 16 in
  let rec dfs node =
    if String.equal node target then true
    else if Hashtbl.mem visited node then false
    else begin
      Hashtbl.add visited node ();
      List.exists dfs (Option.value (Hashtbl.find_opt adj node) ~default:[])
    end
  in
  dfs from

let dangerous_structures profiles =
  let es = edges profiles in
  let by_name = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace by_name p.name p) profiles;
  (* An rw anti-dependency is "vulnerable" only between transactions that
     can commit concurrently — i.e. that do not also write-write
     conflict (first-committer-wins would abort one of them). *)
  let vulnerable e =
    match (Hashtbl.find_opt by_name e.src, Hashtbl.find_opt by_name e.dst) with
    | Some a, Some b -> intersect_witness a.writes b.writes = None
    | _ -> false
  in
  let rw = List.filter (fun e -> e.kind = `Rw && vulnerable e) es in
  List.concat_map
    (fun in_rw ->
      let pivot = in_rw.dst in
      List.filter_map
        (fun out_rw ->
          if String.equal out_rw.src pivot && not (String.equal out_rw.dst pivot) then begin
            (* The structure is dangerous when the cycle can close: T2
               reaches T1 through dependency edges, or T1 = T2. *)
            let t1 = in_rw.src and t2 = out_rw.dst in
            if String.equal t1 t2 || reachable es ~from:t2 ~target:t1 then
              Some { pivot; in_rw; out_rw }
            else None
          end
          else None)
        rw)
    rw

let serializable_under_si profiles = dangerous_structures profiles = []

let pp_dangerous ppf d =
  Format.fprintf ppf "%s --rw(%s)--> %s --rw(%s)--> %s" d.in_rw.src d.in_rw.item d.pivot
    d.out_rw.item d.out_rw.dst

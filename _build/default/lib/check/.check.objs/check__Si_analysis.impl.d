lib/check/si_analysis.ml: Format Hashtbl List Option String

lib/check/si_analysis.mli: Format

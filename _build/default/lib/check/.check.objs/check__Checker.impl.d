lib/check/checker.ml: Hashtbl History List Option

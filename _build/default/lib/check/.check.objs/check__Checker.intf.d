lib/check/checker.mli: History

lib/check/history.ml: Format Hashtbl List Printf

lib/check/runlog.ml: Array Format Hashtbl List Option Printf

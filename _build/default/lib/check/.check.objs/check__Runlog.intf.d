lib/check/runlog.mli: Format

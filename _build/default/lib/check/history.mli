(** Abstract transaction histories (paper §II).

    A history is a time-ordered sequence of begin / read / write /
    commit / abort operations by transactions over single-valued items,
    as in the paper's examples H1, H2, H3. Written values are assumed
    distinct per (transaction, item) so the reads-from relation is
    recoverable from values; the initial value of every item is 0,
    written by the virtual initial transaction. *)

type tx = int
type item = string

type op =
  | Begin of tx
  | Read of tx * item * int  (** value observed *)
  | Write of tx * item * int  (** value written *)
  | Commit of tx
  | Abort of tx

type t = op list

val committed : t -> tx list
(** Transactions with a [Commit], in commit order. *)

val well_formed : t -> (unit, string) result
(** Each transaction begins once, terminates at most once, and operates
    only between its begin and its termination. *)

val reads_of : t -> tx -> (item * int) list
val writes_of : t -> tx -> (item * int) list

val commits_before_begin : t -> (tx * tx) list
(** Pairs (ti, tj) of committed transactions such that ti's commit
    precedes tj's begin in real-time order. *)

val pp : Format.formatter -> t -> unit

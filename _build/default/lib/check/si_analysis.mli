(** Static serializability analysis for snapshot isolation.

    The paper (§IV) notes that GSI is weaker than serializability but
    that "conditions exist to check if a workload runs serializably"
    under SI — the dangerous-structure theory of Fekete et al. (Making
    snapshot isolation serializable, TODS 2005), which the paper cites
    to argue the TPC-C and TPC-W workloads run serializably under GSI.

    This module implements that static check over transaction
    {e profiles}: abstract read- and write-sets of logical items. Every
    anomaly of an SI history requires a {e dangerous structure} in the
    static dependency graph — a transaction [P] (the pivot) with an
    incoming and an outgoing rw-antidependency edge,
    [T1 --rw--> P --rw--> T2], where [T1] and [T2] may run concurrently
    with [P] and the cycle can close from [T2] back to [T1]. A workload
    whose graph has no dangerous structure is serializable under SI
    (and under GSI, whose histories are SI histories over older
    snapshots). *)

type profile = {
  name : string;
  reads : string list;  (** logical items (e.g. "table.column" or finer) read *)
  writes : string list;  (** logical items written *)
}

val profile : name:string -> ?reads:string list -> ?writes:string list -> unit -> profile
(** Writes are implicitly also reads (SI updates read the row version
    they overwrite). *)

type edge = {
  src : string;
  dst : string;
  kind : [ `Rw  (** anti-dependency: src reads what dst writes *)
         | `Ww  (** write-write *)
         | `Wr  (** write-read *) ];
  item : string;  (** a witness item inducing the edge *)
}

val edges : profile list -> edge list
(** The static dependency multigraph (one witness edge per kind per
    ordered pair). *)

type dangerous = {
  pivot : string;
  in_rw : edge;  (** T1 --rw--> pivot *)
  out_rw : edge;  (** pivot --rw--> T2 *)
}

val dangerous_structures : profile list -> dangerous list
(** All pivots with consecutive {e vulnerable} rw-antidependencies that
    can occur in a cycle: an rw edge is vulnerable only between
    transactions that do not also write-write conflict (those cannot
    commit concurrently under first-committer-wins), and the cycle must
    be closable — [in_rw.src] reachable from [out_rw.dst] through
    dependency edges (the degenerate T1 = T2 case included). Empty means
    every execution of the workload under SI/GSI is serializable. *)

val serializable_under_si : profile list -> bool

val pp_dangerous : Format.formatter -> dangerous -> unit

type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted : bool;
}

let create () = { data = Array.make 64 0.0; size = 0; sorted = true }

let add t x =
  if t.size = Array.length t.data then begin
    let data = Array.make (2 * t.size) 0.0 in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- false

let count t = t.size

let total t =
  let sum = ref 0.0 in
  for i = 0 to t.size - 1 do
    sum := !sum +. t.data.(i)
  done;
  !sum

let mean t = if t.size = 0 then 0.0 else total t /. float_of_int t.size

let stddev t =
  if t.size < 2 then 0.0
  else begin
    let m = mean t in
    let acc = ref 0.0 in
    for i = 0 to t.size - 1 do
      let d = t.data.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    sqrt (!acc /. float_of_int (t.size - 1))
  end

let ensure_sorted t =
  if not t.sorted then begin
    let slice = Array.sub t.data 0 t.size in
    Array.sort compare slice;
    Array.blit slice 0 t.data 0 t.size;
    t.sorted <- true
  end

let min_value t =
  if t.size = 0 then 0.0
  else begin
    ensure_sorted t;
    t.data.(0)
  end

let max_value t =
  if t.size = 0 then 0.0
  else begin
    ensure_sorted t;
    t.data.(t.size - 1)
  end

let percentile t p =
  if t.size = 0 then 0.0
  else begin
    ensure_sorted t;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.size)) in
    let idx = if rank <= 0 then 0 else Stdlib.min (rank - 1) (t.size - 1) in
    t.data.(idx)
  end

let median t = percentile t 50.0

let merge a b =
  let t = create () in
  for i = 0 to a.size - 1 do
    add t a.data.(i)
  done;
  for i = 0 to b.size - 1 do
    add t b.data.(i)
  done;
  t

let clear t =
  t.size <- 0;
  t.sorted <- true

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n

  let mean t = if t.n = 0 then 0.0 else t.mean

  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

  let stddev t = sqrt (variance t)
end

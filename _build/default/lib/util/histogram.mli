(** Fixed-width bucketed histogram over [\[lo, hi)].

    Observations below [lo] land in the first bucket, at or above [hi] in
    the last. Used for coarse latency distribution reports. *)

type t

val create : lo:float -> hi:float -> buckets:int -> t
(** Requires [hi > lo] and [buckets > 0]. *)

val add : t -> float -> unit

val count : t -> int
(** Total number of observations. *)

val bucket_count : t -> int

val bucket_range : t -> int -> float * float
(** [bucket_range h i] is the [\[lo, hi)] range of bucket [i]. *)

val bucket_value : t -> int -> int
(** Observations recorded in bucket [i]. *)

val pp : Format.formatter -> t -> unit
(** Render a small ASCII bar chart. *)

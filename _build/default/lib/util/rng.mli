(** Deterministic pseudo-random number generator.

    A self-contained splitmix64 generator so simulation runs are exactly
    reproducible across machines and independent of [Stdlib.Random]
    version changes. Each simulation component can own an independent
    stream derived with {!split}. *)

type t

val create : int -> t
(** [create seed] is a fresh generator seeded with [seed]. *)

val split : t -> t
(** [split rng] derives an independent generator; it advances [rng]. *)

val copy : t -> t
(** A generator with identical state that evolves independently. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float rng x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val uniform : t -> float -> float -> float
(** [uniform rng lo hi] is uniform in [\[lo, hi)]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val zipf : t -> n:int -> theta:float -> int
(** [zipf rng ~n ~theta] samples in [\[0, n)] with Zipfian skew [theta]
    (0 = uniform). Uses the rejection-inversion-free approximation that is
    standard in YCSB-style workload generators. *)

val pick : t -> 'a array -> 'a
(** Uniformly pick an element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

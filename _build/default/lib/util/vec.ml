type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size

let push t x =
  if t.size = Array.length t.data then begin
    let capacity = if t.size = 0 then 16 else t.size * 2 in
    let data = Array.make capacity x in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let check t i =
  if i < 0 || i >= t.size then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (size %d)" i t.size)

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.data.(i)
  done

let to_list t =
  let rec build i acc = if i < 0 then acc else build (i - 1) (t.data.(i) :: acc) in
  build (t.size - 1) []

let clear t =
  t.data <- [||];
  t.size <- 0

lib/util/rng.mli:

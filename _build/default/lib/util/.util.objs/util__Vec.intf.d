lib/util/vec.mli:

lib/util/stats.mli:

lib/util/pqueue.mli:

(** Sample statistics accumulators.

    {!t} stores every observation (needed for exact percentiles of
    latency samples); {!Online} is a constant-space Welford accumulator
    for high-volume counters. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int

val total : t -> float

val mean : t -> float
(** Mean of the observations; [0.] when empty. *)

val stddev : t -> float
(** Sample standard deviation; [0.] when fewer than two observations. *)

val min_value : t -> float
(** Smallest observation; [0.] when empty. *)

val max_value : t -> float
(** Largest observation; [0.] when empty. *)

val percentile : t -> float -> float
(** [percentile s p] with [p] in [\[0, 100\]]; nearest-rank on the sorted
    sample; [0.] when empty. *)

val median : t -> float

val merge : t -> t -> t
(** A fresh accumulator holding the observations of both arguments. *)

val clear : t -> unit

(** Constant-space mean/variance accumulator (Welford). *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end

(** Growable array (OCaml 5.2's [Dynarray] is not available on 5.1). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val to_list : 'a t -> 'a list

val clear : 'a t -> unit

(* Binary min-heap over (priority, sequence, payload). The sequence number
   makes the ordering total and FIFO among equal priorities, so simulation
   runs are deterministic. *)

type 'a entry = { prio : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

let entry_lt a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow q =
  let capacity = Array.length q.data in
  let new_capacity = if capacity = 0 then 16 else capacity * 2 in
  (* Dummy slot reused to fill the fresh tail of the array. *)
  let dummy = q.data.(0) in
  let data = Array.make new_capacity dummy in
  Array.blit q.data 0 data 0 q.size;
  q.data <- data

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt q.data.(i) q.data.(parent) then begin
      let tmp = q.data.(i) in
      q.data.(i) <- q.data.(parent);
      q.data.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 in
  if left < q.size then begin
    let right = left + 1 in
    let smallest =
      if right < q.size && entry_lt q.data.(right) q.data.(left) then right
      else left
    in
    if entry_lt q.data.(smallest) q.data.(i) then begin
      let tmp = q.data.(i) in
      q.data.(i) <- q.data.(smallest);
      q.data.(smallest) <- tmp;
      sift_down q smallest
    end
  end

let push q prio payload =
  let e = { prio; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.size = 0 && Array.length q.data = 0 then q.data <- Array.make 16 e
  else if q.size = Array.length q.data then grow q;
  q.data.(q.size) <- e;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      sift_down q 0
    end;
    Some (top.prio, top.payload)
  end

let peek q = if q.size = 0 then None else Some (q.data.(0).prio, q.data.(0).payload)

let clear q =
  q.size <- 0;
  q.data <- [||]

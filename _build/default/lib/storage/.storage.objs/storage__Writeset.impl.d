lib/storage/writeset.ml: Array Format Hashtbl List String Value

lib/storage/value.ml: Float Format Hashtbl Stdlib String

lib/storage/query.ml: Array Database Expr Float Format Hashtbl List Mvcc Printf Result Schema Table Txn Value

lib/storage/codec.mli: Buffer Schema Value Writeset

lib/storage/expr.ml: Array Format List Printf Schema Stdlib String Value

lib/storage/mvcc.mli: Value

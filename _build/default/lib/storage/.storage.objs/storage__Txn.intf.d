lib/storage/txn.mli: Database Expr Mvcc Value Writeset

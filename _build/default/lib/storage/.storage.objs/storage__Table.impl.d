lib/storage/table.ml: Array Hashtbl List Mvcc Printf Schema Value

lib/storage/mvcc.ml: Array Hashtbl List Map Printf Seq Value

lib/storage/codec.ml: Array Buffer Char Int64 List Printf Schema String Value Writeset

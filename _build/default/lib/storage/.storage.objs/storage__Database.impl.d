lib/storage/database.ml: Array Buffer Codec Hashtbl List Printf Schema Table Value Writeset

lib/storage/expr.mli: Format Schema Value

lib/storage/query.mli: Expr Format Mvcc Txn Value

lib/storage/table.mli: Mvcc Schema Value

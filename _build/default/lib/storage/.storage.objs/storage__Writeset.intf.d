lib/storage/writeset.mli: Format Value

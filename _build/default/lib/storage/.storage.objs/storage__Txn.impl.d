lib/storage/txn.ml: Array Database Expr Format Hashtbl List Mvcc Printf Schema String Table Value Writeset

(** Prepared statements: SQL-operation values executed against a {!Txn.t}.

    Workloads build transactions as lists of statements with parameters
    already bound (the paper's "prepared statement" model), the replica
    executes them one by one and charges simulated CPU time from the
    returned {!Txn.cost}. [table_of] gives the static table a statement
    touches — the basis of the fine-grained approach's table-sets. *)

(** Aggregation operators. [Count_all] needs no column. *)
type agg =
  | Count_all
  | Sum of string
  | Avg of string
  | Min_of of string
  | Max_of of string

type t =
  | Select of { table : string; where : Expr.t option; limit : int option }
  | Get of { table : string; key : Mvcc.key }
  | Range of {
      table : string;
      lo : Mvcc.key option;
      hi : Mvcc.key option;  (** inclusive primary-key bounds *)
      where : Expr.t option;
      limit : int option;
    }
  | Aggregate of { table : string; op : agg; where : Expr.t option }
      (** returns one row [\[| result |\]]; [Avg] of no rows is [Null] *)
  | Group_count of {
      table : string;
      group_column : string;
      lo : Mvcc.key option;
      hi : Mvcc.key option;
      limit : int;
    }
      (** count rows per distinct value of [group_column] over the key
          range; returns the top [limit] groups as [\[| value; count |\]]
          rows, descending by count (the best-sellers shape) *)
  | Join of {
      left : string;
      right : string;
      left_col : string;
      right_col : string;  (** equi-join columns *)
      left_where : Expr.t option;
      limit : int option;
    }
      (** nested-loop equi-join probing the right table's index (or
          primary key) per left row; result rows are left @ right *)
  | Update of { table : string; where : Expr.t option; set : (string * Expr.t) list }
  | Update_key of { table : string; key : Mvcc.key; set : (string * Expr.t) list }
  | Insert of { table : string; row : Value.t array }
  | Put of { table : string; row : Value.t array }  (** insert-or-replace *)
  | Delete of { table : string; where : Expr.t option }
  | Delete_key of { table : string; key : Mvcc.key }

type result =
  | Rows of Value.t array list
  | Affected of int
  | Error of string

val table_of : t -> string
(** The (left, for joins) table the statement accesses. *)

val tables_of : t -> string list
(** All tables the statement accesses (two for joins). *)

val is_update : t -> bool
(** Whether the statement may write. *)

val table_set : t list -> string list
(** Distinct tables accessed by a statement list, in first-use order:
    the transaction's table-set. *)

val exec : Txn.t -> t -> result * Txn.cost
(** Execute one statement; the cost covers only this statement. *)

val pp : Format.formatter -> t -> unit

(** Row expressions: the predicate and assignment language for queries.

    Expressions are evaluated against a single row (an array of
    {!Value.t}); column references are positional, resolved against a
    {!Schema.t} at construction time by the [col] helper. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of Value.t
  | Col of int
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Concat of t * t
  | Is_null of t
  | Like of t * string
      (** SQL LIKE with [%] (any run) and [_] (any character) wildcards;
          [Null] and non-text values never match *)

exception Type_error of string

val eval : Value.t array -> t -> Value.t
(** Evaluate against a row. Raises {!Type_error} on ill-typed operations
    (e.g. adding a text to an int). Comparison with [Null] yields
    [Bool false] except through [Is_null], SQL-style. *)

val eval_bool : Value.t array -> t -> bool
(** Evaluate a predicate; non-boolean results raise {!Type_error}. *)

val columns : t -> int list
(** Distinct column indices referenced, ascending. *)

(** Constructors. *)

val col : Schema.t -> string -> t
(** Column reference by name; raises [Invalid_argument] if unknown. *)

val i : int -> t
val f : float -> t
val s : string -> t
val b : bool -> t
val ( = ) : t -> t -> t
val ( <> ) : t -> t -> t
val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( > ) : t -> t -> t
val ( >= ) : t -> t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val not_ : t -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val like : t -> string -> t

val like_match : pattern:string -> string -> bool
(** The LIKE predicate itself, exposed for tests. *)

val pp : Format.formatter -> t -> unit

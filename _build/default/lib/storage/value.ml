type t =
  | Null
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool

type ty = Tint | Tfloat | Ttext | Tbool

let type_of = function
  | Null -> None
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Text _ -> Some Ttext
  | Bool _ -> Some Tbool

let matches ty v =
  match (ty, v) with
  | _, Null -> true
  | Tint, Int _ | Tfloat, Float _ | Ttext, Text _ | Tbool, Bool _ -> true
  | (Tint | Tfloat | Ttext | Tbool), _ -> false

(* Rank for cross-type comparisons; numerics share a rank so that ints and
   floats compare by value. *)
let rank = function Null -> 0 | Bool _ -> 1 | Int _ | Float _ -> 2 | Text _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Text x, Text y -> Stdlib.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Int x -> Hashtbl.hash x
  | Float x -> if Float.is_integer x then Hashtbl.hash (int_of_float x) else Hashtbl.hash x
  | Text x -> Hashtbl.hash x
  | Bool x -> Hashtbl.hash x

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Int x -> Format.pp_print_int ppf x
  | Float x -> Format.fprintf ppf "%g" x
  | Text x -> Format.fprintf ppf "%S" x
  | Bool x -> Format.pp_print_bool ppf x

let to_string v = Format.asprintf "%a" pp v

let pp_ty ppf ty =
  Format.pp_print_string ppf
    (match ty with Tint -> "INT" | Tfloat -> "FLOAT" | Ttext -> "TEXT" | Tbool -> "BOOL")

let size_bytes = function
  | Null -> 1
  | Int _ -> 8
  | Float _ -> 8
  | Text s -> String.length s + 4
  | Bool _ -> 1

let int x = Int x
let float x = Float x
let text x = Text x
let bool x = Bool x

let as_int = function Int x -> x | v -> invalid_arg ("Value.as_int: " ^ to_string v)
let as_float = function
  | Float x -> x
  | Int x -> float_of_int x
  | v -> invalid_arg ("Value.as_float: " ^ to_string v)
let as_text = function Text x -> x | v -> invalid_arg ("Value.as_text: " ^ to_string v)
let as_bool = function Bool x -> x | v -> invalid_arg ("Value.as_bool: " ^ to_string v)

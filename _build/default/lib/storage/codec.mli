(** Binary encoding of storage values, rows, writesets and schemas.

    Used for database checkpoints ({!Database.snapshot}), for exact
    wire-size accounting of propagated writesets, and for replica state
    transfer in recovery. The format is little-endian, self-describing
    via tag bytes, and versioned by a leading magic string. *)

type reader

val reader : string -> reader
(** A cursor over an encoded buffer, starting at offset 0. *)

val reader_at_end : reader -> bool

val expect_raw : reader -> string -> unit
(** Consume exactly these raw bytes; raises {!Corrupt} on mismatch.
    Used for magic headers. *)

exception Corrupt of string
(** Raised by every [decode_*] on malformed input. *)

val encode_value : Buffer.t -> Value.t -> unit
val decode_value : reader -> Value.t

val encode_row : Buffer.t -> Value.t array -> unit
val decode_row : reader -> Value.t array

val encode_row_opt : Buffer.t -> Value.t array option -> unit
val decode_row_opt : reader -> Value.t array option

val encode_int : Buffer.t -> int -> unit
val decode_int : reader -> int

val encode_string : Buffer.t -> string -> unit
val decode_string : reader -> string

val encode_writeset : Buffer.t -> Writeset.t -> unit
val decode_writeset : reader -> Writeset.t

val writeset_bytes : Writeset.t -> int
(** Exact encoded size of a writeset. *)

val encode_schema : Buffer.t -> Schema.t -> unit
val decode_schema : reader -> Schema.t

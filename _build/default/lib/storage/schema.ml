type column = {
  col_name : string;
  col_type : Value.ty;
  nullable : bool;
}

type t = {
  table_name : string;
  columns : column array;
  primary_key : int array;
  indexed : int array;
}

let column_index t name =
  let rec find i =
    if i >= Array.length t.columns then raise Not_found
    else if String.equal t.columns.(i).col_name name then i
    else find (i + 1)
  in
  find 0

let make ~name ~columns ?(nullable = []) ?(indexes = []) ~key () =
  if key = [] then invalid_arg "Schema.make: empty primary key";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (col_name, _) ->
      if Hashtbl.mem seen col_name then
        invalid_arg ("Schema.make: duplicate column " ^ col_name);
      Hashtbl.add seen col_name ())
    columns;
  let columns_arr =
    Array.of_list
      (List.map
         (fun (col_name, col_type) ->
           { col_name; col_type; nullable = List.mem col_name nullable })
         columns)
  in
  let t = { table_name = name; columns = columns_arr; primary_key = [||]; indexed = [||] } in
  let resolve col_name =
    match column_index t col_name with
    | i -> i
    | exception Not_found -> invalid_arg ("Schema.make: unknown column " ^ col_name)
  in
  let primary_key = Array.of_list (List.map resolve key) in
  let indexed = Array.of_list (List.map resolve indexes) in
  Array.iter
    (fun i ->
      if columns_arr.(i).nullable then
        invalid_arg ("Schema.make: key column may not be nullable: " ^ columns_arr.(i).col_name))
    primary_key;
  { t with primary_key; indexed }

let column_count t = Array.length t.columns

let key_of_row t row = Array.map (fun i -> row.(i)) t.primary_key

let validate_row t row =
  if Array.length row <> Array.length t.columns then
    Error
      (Printf.sprintf "%s: arity mismatch: expected %d columns, got %d" t.table_name
         (Array.length t.columns) (Array.length row))
  else begin
    let error = ref None in
    Array.iteri
      (fun i col ->
        if !error = None then begin
          let v = row.(i) in
          if v = Value.Null && not col.nullable then
            error :=
              Some (Printf.sprintf "%s.%s: NULL in non-nullable column" t.table_name col.col_name)
          else if not (Value.matches col.col_type v) then
            error :=
              Some
                (Format.asprintf "%s.%s: type mismatch: expected %a, got %a" t.table_name
                   col.col_name Value.pp_ty col.col_type Value.pp v)
        end)
      t.columns;
    match !error with None -> Ok () | Some msg -> Error msg
  end

let pp ppf t =
  Format.fprintf ppf "@[<v 2>TABLE %s (" t.table_name;
  Array.iteri
    (fun i col ->
      Format.fprintf ppf "@,%s %a%s%s" col.col_name Value.pp_ty col.col_type
        (if col.nullable then "" else " NOT NULL")
        (if Array.exists (fun k -> k = i) t.primary_key then " KEY" else ""))
    t.columns;
  Format.fprintf ppf ")@]"

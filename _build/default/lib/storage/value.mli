(** Typed data values stored in table cells. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool

type ty = Tint | Tfloat | Ttext | Tbool

val type_of : t -> ty option
(** [None] for [Null]. *)

val matches : ty -> t -> bool
(** Whether the value inhabits the type ([Null] matches every type). *)

val compare : t -> t -> int
(** Total order: Null < Bool < Int ~ Float (numeric order) < Text.
    Ints and floats compare numerically with each other. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val pp_ty : Format.formatter -> ty -> unit

val size_bytes : t -> int
(** Approximate wire/storage footprint, used by the network model. *)

(** Convenience constructors. *)

val int : int -> t
val float : float -> t
val text : string -> t
val bool : bool -> t

(** Coercions; raise [Invalid_argument] on type mismatch. *)

val as_int : t -> int
val as_float : t -> float
val as_text : t -> string
val as_bool : t -> bool

type agg =
  | Count_all
  | Sum of string
  | Avg of string
  | Min_of of string
  | Max_of of string

type t =
  | Select of { table : string; where : Expr.t option; limit : int option }
  | Get of { table : string; key : Mvcc.key }
  | Range of {
      table : string;
      lo : Mvcc.key option;
      hi : Mvcc.key option;
      where : Expr.t option;
      limit : int option;
    }
  | Aggregate of { table : string; op : agg; where : Expr.t option }
  | Group_count of {
      table : string;
      group_column : string;
      lo : Mvcc.key option;
      hi : Mvcc.key option;
      limit : int;
    }
  | Join of {
      left : string;
      right : string;
      left_col : string;
      right_col : string;
      left_where : Expr.t option;
      limit : int option;
    }
  | Update of { table : string; where : Expr.t option; set : (string * Expr.t) list }
  | Update_key of { table : string; key : Mvcc.key; set : (string * Expr.t) list }
  | Insert of { table : string; row : Value.t array }
  | Put of { table : string; row : Value.t array }
  | Delete of { table : string; where : Expr.t option }
  | Delete_key of { table : string; key : Mvcc.key }

type result =
  | Rows of Value.t array list
  | Affected of int
  | Error of string

let table_of = function
  | Select { table; _ }
  | Get { table; _ }
  | Range { table; _ }
  | Aggregate { table; _ }
  | Group_count { table; _ }
  | Update { table; _ }
  | Update_key { table; _ }
  | Insert { table; _ }
  | Put { table; _ }
  | Delete { table; _ }
  | Delete_key { table; _ } -> table
  | Join { left; _ } -> left

let tables_of = function
  | Join { left; right; _ } -> [ left; right ]
  | stmt -> [ table_of stmt ]

let is_update = function
  | Select _ | Get _ | Range _ | Aggregate _ | Group_count _ | Join _ -> false
  | Update _ | Update_key _ | Insert _ | Put _ | Delete _ | Delete_key _ -> true

let table_set statements =
  let seen = Hashtbl.create 8 in
  List.concat_map tables_of statements
  |> List.filter_map (fun table ->
         if Hashtbl.mem seen table then None
         else begin
           Hashtbl.add seen table ();
           Some table
         end)

let column_of txn ~table name =
  let schema = Table.schema (Database.table (Txn.database txn) table) in
  match Schema.column_index schema name with
  | idx -> idx
  | exception Not_found ->
    invalid_arg (Printf.sprintf "Query: unknown column %s.%s" table name)

let numeric_fold rows column ~init ~f =
  List.fold_left
    (fun acc row ->
      match row.(column) with
      | Value.Null -> acc
      | v -> Some (match acc with None -> Value.as_float v | Some a -> f a (Value.as_float v)))
    init rows

let run_aggregate txn ~table ~op ~where =
  let rows = Txn.select txn ~table ?where () in
  match op with
  | Count_all -> Value.Int (List.length rows)
  | Sum name ->
    let column = column_of txn ~table name in
    let total =
      List.fold_left
        (fun acc row ->
          match row.(column) with Value.Null -> acc | v -> acc +. Value.as_float v)
        0.0 rows
    in
    Value.Float total
  | Avg name ->
    let column = column_of txn ~table name in
    let n = ref 0 and total = ref 0.0 in
    List.iter
      (fun row ->
        match row.(column) with
        | Value.Null -> ()
        | v ->
          incr n;
          total := !total +. Value.as_float v)
      rows;
    if !n = 0 then Value.Null else Value.Float (!total /. float_of_int !n)
  | Min_of name ->
    let column = column_of txn ~table name in
    (match numeric_fold rows column ~init:None ~f:Float.min with
    | None -> Value.Null
    | Some x -> Value.Float x)
  | Max_of name ->
    let column = column_of txn ~table name in
    (match numeric_fold rows column ~init:None ~f:Float.max with
    | None -> Value.Null
    | Some x -> Value.Float x)

let run_group_count txn ~table ~group_column ~lo ~hi ~limit =
  let column = column_of txn ~table group_column in
  let rows = Txn.range txn ~table ?lo ?hi () in
  let counts : (Value.t, int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun row ->
      let v = row.(column) in
      match Hashtbl.find_opt counts v with
      | Some r -> incr r
      | None -> Hashtbl.add counts v (ref 1))
    rows;
  let groups = Hashtbl.fold (fun v r acc -> (v, !r) :: acc) counts [] in
  let ordered =
    List.sort
      (fun (va, ca) (vb, cb) ->
        match compare cb ca with 0 -> Value.compare va vb | c -> c)
      groups
  in
  List.filteri (fun i _ -> i < limit) ordered
  |> List.map (fun (v, c) -> [| v; Value.Int c |])

let run_join txn ~left ~right ~left_col ~right_col ~left_where ~limit =
  let lcol = column_of txn ~table:left left_col in
  ignore (column_of txn ~table:right right_col);  (* validate the column exists *)
  let right_schema = Table.schema (Database.table (Txn.database txn) right) in
  let left_rows = Txn.select txn ~table:left ?where:left_where ?limit () in
  let max_out = match limit with Some l -> l | None -> max_int in
  let out = ref [] in
  let count = ref 0 in
  (try
     List.iter
       (fun lrow ->
         let key_value = lrow.(lcol) in
         let matches =
           Txn.select txn ~table:right
             ~where:Expr.(col right_schema right_col = Const key_value)
             ()
         in
         List.iter
           (fun rrow ->
             if !count >= max_out then raise Exit;
             out := Array.append lrow rrow :: !out;
             incr count)
           matches)
       left_rows
   with Exit -> ());
  List.rev !out

let exec txn stmt =
  ignore (Txn.reset_cost txn);
  let result =
    match stmt with
    | Select { table; where; limit } -> Rows (Txn.select txn ~table ?where ?limit ())
    | Get { table; key } -> begin
      match Txn.get txn ~table ~key with Some row -> Rows [ row ] | None -> Rows []
    end
    | Range { table; lo; hi; where; limit } ->
      Rows (Txn.range txn ~table ?lo ?hi ?where ?limit ())
    | Aggregate { table; op; where } -> Rows [ [| run_aggregate txn ~table ~op ~where |] ]
    | Group_count { table; group_column; lo; hi; limit } ->
      Rows (run_group_count txn ~table ~group_column ~lo ~hi ~limit)
    | Join { left; right; left_col; right_col; left_where; limit } ->
      Rows (run_join txn ~left ~right ~left_col ~right_col ~left_where ~limit)
    | Update { table; where; set } -> Affected (Txn.update txn ~table ?where ~set ())
    | Update_key { table; key; set } ->
      Affected (if Txn.update_key txn ~table ~key ~set then 1 else 0)
    | Insert { table; row } -> begin
      match Txn.insert txn ~table row with Ok () -> Affected 1 | Result.Error msg -> Error msg
    end
    | Put { table; row } -> begin
      match Txn.put txn ~table row with Ok () -> Affected 1 | Result.Error msg -> Error msg
    end
    | Delete { table; where } -> Affected (Txn.delete txn ~table ?where ())
    | Delete_key { table; key } -> Affected (if Txn.delete_key txn ~table ~key then 1 else 0)
  in
  (result, Txn.reset_cost txn)

let pp_key ppf key =
  Array.iteri
    (fun i v -> Format.fprintf ppf "%s%a" (if i > 0 then "," else "") Value.pp v)
    key

let pp_where ppf = function
  | None -> ()
  | Some e -> Format.fprintf ppf " WHERE %a" Expr.pp e

let pp_agg ppf = function
  | Count_all -> Format.pp_print_string ppf "COUNT(*)"
  | Sum c -> Format.fprintf ppf "SUM(%s)" c
  | Avg c -> Format.fprintf ppf "AVG(%s)" c
  | Min_of c -> Format.fprintf ppf "MIN(%s)" c
  | Max_of c -> Format.fprintf ppf "MAX(%s)" c

let pp ppf = function
  | Range { table; lo; hi; where; limit } ->
    let pp_bound ppf = function
      | Some key -> pp_key ppf key
      | None -> Format.pp_print_string ppf "*"
    in
    Format.fprintf ppf "RANGE %s [%a .. %a]%a%s" table pp_bound lo pp_bound hi pp_where
      where
      (match limit with Some l -> Printf.sprintf " LIMIT %d" l | None -> "")
  | Aggregate { table; op; where } ->
    Format.fprintf ppf "SELECT %a FROM %s%a" pp_agg op table pp_where where
  | Group_count { table; group_column; limit; _ } ->
    Format.fprintf ppf "SELECT %s, COUNT(*) FROM %s GROUP BY %s ORDER BY 2 DESC LIMIT %d"
      group_column table group_column limit
  | Join { left; right; left_col; right_col; left_where; limit } ->
    Format.fprintf ppf "SELECT * FROM %s JOIN %s ON %s.%s = %s.%s%a%s" left right left
      left_col right right_col pp_where left_where
      (match limit with Some l -> Printf.sprintf " LIMIT %d" l | None -> "")
  | Select { table; where; limit } ->
    Format.fprintf ppf "SELECT * FROM %s%a%s" table pp_where where
      (match limit with Some l -> Printf.sprintf " LIMIT %d" l | None -> "")
  | Get { table; key } -> Format.fprintf ppf "GET %s[%a]" table pp_key key
  | Update { table; where; set } ->
    Format.fprintf ppf "UPDATE %s SET %a%a" table
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (c, e) -> Format.fprintf ppf "%s = %a" c Expr.pp e))
      set pp_where where
  | Update_key { table; key; set } ->
    Format.fprintf ppf "UPDATE %s[%a] SET %a" table pp_key key
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (c, e) -> Format.fprintf ppf "%s = %a" c Expr.pp e))
      set
  | Insert { table; row } ->
    Format.fprintf ppf "INSERT INTO %s VALUES (%a)" table pp_key row
  | Put { table; row } ->
    Format.fprintf ppf "PUT INTO %s VALUES (%a)" table pp_key row
  | Delete { table; where } -> Format.fprintf ppf "DELETE FROM %s%a" table pp_where where
  | Delete_key { table; key } -> Format.fprintf ppf "DELETE %s[%a]" table pp_key key

(** Table schemas: column definitions, primary key, secondary indexes. *)

type column = {
  col_name : string;
  col_type : Value.ty;
  nullable : bool;
}

type t = {
  table_name : string;
  columns : column array;
  primary_key : int array;  (** column indices forming the key *)
  indexed : int array;  (** columns with a secondary index *)
}

val make :
  name:string ->
  columns:(string * Value.ty) list ->
  ?nullable:string list ->
  ?indexes:string list ->
  key:string list ->
  unit ->
  t
(** Build a schema; raises [Invalid_argument] on unknown column names,
    duplicate columns, or an empty key. *)

val column_index : t -> string -> int
(** Raises [Not_found] for unknown names. *)

val column_count : t -> int

val key_of_row : t -> Value.t array -> Value.t array
(** Extract the primary-key values from a full row. *)

val validate_row : t -> Value.t array -> (unit, string) result
(** Arity, type and nullability check. Key columns must be non-null. *)

val pp : Format.formatter -> t -> unit

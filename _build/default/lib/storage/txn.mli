(** Snapshot-isolation transactions over a {!Database.t}.

    A transaction reads from a fixed snapshot version and buffers its own
    writes (read-your-writes). Committing extracts the {!Writeset.t}; in
    the replicated system, certification (first-committer-wins over the
    interval (snapshot, commit]) is performed by the certifier, while
    {!validate} provides the same check for standalone use.

    Cost counters record rows scanned/read/written so the simulator can
    charge CPU time proportional to real work. *)

type t

type cost = {
  rows_scanned : int;  (** rows examined by scans/lookups *)
  rows_read : int;  (** rows returned to the client *)
  rows_written : int;  (** buffered writes *)
}

val begin_at : Database.t -> snapshot:int -> t
(** Start a transaction reading at [snapshot]. Raises [Invalid_argument]
    if [snapshot] exceeds the database version. *)

val begin_ : Database.t -> t
(** Start at the current database version. *)

val snapshot : t -> int

val database : t -> Database.t

val cost : t -> cost

val reset_cost : t -> cost
(** Return the counters accumulated since the last reset and zero them;
    used by the replica to charge per-statement CPU time. *)

(** {2 Reads} *)

val get : t -> table:string -> key:Mvcc.key -> Value.t array option
(** Point read by primary key, overlaid with the transaction's writes. *)

val select :
  t -> table:string -> ?where:Expr.t -> ?limit:int -> unit -> Value.t array list
(** Predicate read. Uses a secondary index when [where] contains an
    equality on an indexed column; falls back to a key-ordered scan. *)

val range :
  t -> table:string -> ?lo:Mvcc.key -> ?hi:Mvcc.key -> ?where:Expr.t -> ?limit:int ->
  unit -> Value.t array list
(** Primary-key range read over [\[lo, hi\]] (inclusive, lexicographic —
    a key prefix bounds all composite keys under it), overlaid with the
    transaction's writes. Only rows in the range are charged to the cost
    model. *)

(** {2 Writes (buffered until commit)} *)

val insert : t -> table:string -> Value.t array -> (unit, string) result
(** Fails if the key already exists in the snapshot or the write buffer,
    or on schema validation. *)

val put : t -> table:string -> Value.t array -> (unit, string) result
(** Insert-or-replace (upsert). Schema-validated. *)

val update :
  t -> table:string -> ?where:Expr.t -> set:(string * Expr.t) list -> unit -> int
(** Read-modify-write on matching rows; returns rows updated. *)

val update_key : t -> table:string -> key:Mvcc.key -> set:(string * Expr.t) list -> bool
(** Update one row by key; [false] if the row is absent. *)

val delete : t -> table:string -> ?where:Expr.t -> unit -> int

val delete_key : t -> table:string -> key:Mvcc.key -> bool

(** {2 Commit} *)

val writeset : t -> Writeset.t
(** Buffered writes in first-write order. Empty for read-only txns. *)

val is_read_only : t -> bool

val validate : t -> bool
(** First-committer-wins check against the current database state: true
    iff no record in the writeset has a committed version newer than the
    snapshot. *)

val commit_standalone : t -> (int, string) result
(** Validate and apply at the next version; for single-node use (the
    replicated system drives validation and apply itself). Returns the
    commit version, or [Error] if validation failed. Read-only
    transactions return the snapshot version. *)

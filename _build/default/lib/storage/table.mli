(** A table: schema + MVCC store + secondary indexes.

    Secondary indexes are value -> key-set maps maintained on version
    install (PostgreSQL-style: index entries are never removed on update;
    readers re-check visibility and the predicate against the base row,
    and {!Mvcc.gc} keeps chains short). *)

type t

val create : Schema.t -> t

val schema : t -> Schema.t

val name : t -> string

val install : t -> key:Mvcc.key -> version:int -> Value.t array option -> unit
(** Install a row version (or tombstone) at [version]. *)

val read : t -> key:Mvcc.key -> at:int -> Value.t array option

val latest_version : t -> key:Mvcc.key -> int option

val index_lookup : t -> column:int -> value:Value.t -> at:int -> (Mvcc.key * Value.t array) list
(** Visible rows whose indexed [column] equals [value] at snapshot [at].
    Raises [Invalid_argument] if the column has no index. *)

val has_index : t -> column:int -> bool

val scan :
  t -> at:int -> ?where:(Value.t array -> bool) -> ?limit:int -> unit ->
  (Mvcc.key * Value.t array) list * int
(** Full scan in key order at snapshot [at]; returns matching rows and
    the number of rows examined (for the cost model). *)

val range_scan :
  t -> at:int -> ?lo:Mvcc.key -> ?hi:Mvcc.key -> ?where:(Value.t array -> bool) ->
  ?limit:int -> unit -> (Mvcc.key * Value.t array) list * int
(** Like {!scan} but bounded to the inclusive primary-key range
    [\[lo, hi\]]; only rows inside the range are examined. *)

val row_count : t -> at:int -> int
(** Number of visible rows at a snapshot. *)

val key_count : t -> int

val version_count : t -> int

val fold_chains :
  t -> init:'a -> f:('a -> Mvcc.key -> (int * Value.t array option) list -> 'a) -> 'a
(** Fold over full version chains (newest first per key), ascending key
    order. Used by checkpointing. *)

val fold_visible :
  t -> at:int -> init:'a -> f:('a -> Mvcc.key -> Value.t array -> 'a) -> 'a

val gc : t -> keep_after:int -> int

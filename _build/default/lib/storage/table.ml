type secondary = {
  sec_column : int;
  entries : (Value.t, (Mvcc.key, unit) Hashtbl.t) Hashtbl.t;
}

type t = {
  schema : Schema.t;
  store : Mvcc.t;
  secondaries : secondary list;
}

let create schema =
  let secondaries =
    Array.to_list schema.Schema.indexed
    |> List.map (fun sec_column -> { sec_column; entries = Hashtbl.create 256 })
  in
  { schema; store = Mvcc.create (); secondaries }

let schema t = t.schema

let name t = t.schema.Schema.table_name

let index_insert sec key value =
  let bucket =
    match Hashtbl.find_opt sec.entries value with
    | Some bucket -> bucket
    | None ->
      let bucket = Hashtbl.create 4 in
      Hashtbl.add sec.entries value bucket;
      bucket
  in
  Hashtbl.replace bucket key ()

let install t ~key ~version row =
  Mvcc.install t.store key ~version row;
  match row with
  | None -> ()
  | Some row ->
    List.iter (fun sec -> index_insert sec key row.(sec.sec_column)) t.secondaries

let read t ~key ~at = Mvcc.read t.store key ~at

let latest_version t ~key = Mvcc.latest_version t.store key

let has_index t ~column = List.exists (fun sec -> sec.sec_column = column) t.secondaries

let index_lookup t ~column ~value ~at =
  match List.find_opt (fun sec -> sec.sec_column = column) t.secondaries with
  | None ->
    invalid_arg
      (Printf.sprintf "Table.index_lookup: no index on %s column %d" (name t) column)
  | Some sec -> begin
    match Hashtbl.find_opt sec.entries value with
    | None -> []
    | Some bucket ->
      Hashtbl.fold
        (fun key () acc ->
          match Mvcc.read t.store key ~at with
          | Some row when Value.equal row.(column) value -> (key, row) :: acc
          | Some _ | None -> acc)
        bucket []
  end

let scan_with ~iter t ~at ?where ?limit () =
  let pred = match where with Some p -> p | None -> fun _ -> true in
  let examined = ref 0 in
  let hits = ref [] in
  let hit_count = ref 0 in
  let max_hits = match limit with Some l -> l | None -> max_int in
  (try
     iter t.store (fun key ->
         if !hit_count >= max_hits then raise Exit;
         match Mvcc.read t.store key ~at with
         | None -> incr examined
         | Some row ->
           incr examined;
           if pred row then begin
             hits := (key, row) :: !hits;
             incr hit_count
           end)
   with Exit -> ());
  (List.rev !hits, !examined)

let scan t ~at ?where ?limit () = scan_with ~iter:Mvcc.iter_keys_ordered t ~at ?where ?limit ()

let range_scan t ~at ?lo ?hi ?where ?limit () =
  scan_with ~iter:(fun store f -> Mvcc.iter_keys_range store ?lo ?hi f) t ~at ?where ?limit ()

let row_count t ~at = Mvcc.fold_visible t.store ~at ~init:0 ~f:(fun acc _ _ -> acc + 1)

let key_count t = Mvcc.key_count t.store

let version_count t = Mvcc.version_count t.store

let fold_chains t ~init ~f = Mvcc.fold_chains t.store ~init ~f

let fold_visible t ~at ~init ~f = Mvcc.fold_visible t.store ~at ~init ~f

let gc t ~keep_after = Mvcc.gc t.store ~keep_after

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of Value.t
  | Col of int
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Concat of t * t
  | Is_null of t
  | Like of t * string

exception Type_error of string

(* LIKE matching with % and _ wildcards; classic two-pointer algorithm
   with backtracking on the last %. *)
let like_match ~pattern s =
  let pl = String.length pattern and sl = String.length s in
  let rec go pi si star_pi star_si =
    if si >= sl then begin
      (* Consume trailing %s. *)
      let rec only_percents i = i >= pl || (pattern.[i] = '%' && only_percents (i + 1)) in
      only_percents pi
    end
    else if pi < pl && (pattern.[pi] = '_' || pattern.[pi] = s.[si]) then
      go (pi + 1) (si + 1) star_pi star_si
    else if pi < pl && pattern.[pi] = '%' then go (pi + 1) si pi si
    else if star_pi >= 0 then go (star_pi + 1) (star_si + 1) star_pi (star_si + 1)
    else false
  in
  go 0 0 (-1) (-1)

let type_error fmt = Format.kasprintf (fun msg -> raise (Type_error msg)) fmt

let rec eval row expr =
  match expr with
  | Const v -> v
  | Col idx ->
    if idx < 0 || idx >= Array.length row then type_error "column %d out of range" idx
    else row.(idx)
  | Cmp (op, a, b) -> begin
    let va = eval row a and vb = eval row b in
    match (va, vb) with
    | Value.Null, _ | _, Value.Null -> Value.Bool false
    | _ ->
      let c = Value.compare va vb in
      let r =
        match op with
        | Eq -> c = 0
        | Ne -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
      in
      Value.Bool r
  end
  | And (a, b) -> Value.Bool (eval_bool row a && eval_bool row b)
  | Or (a, b) -> Value.Bool (eval_bool row a || eval_bool row b)
  | Not a -> Value.Bool (not (eval_bool row a))
  | Add (a, b) -> arith row "+" ( + ) ( +. ) a b
  | Sub (a, b) -> arith row "-" ( - ) ( -. ) a b
  | Mul (a, b) -> arith row "*" ( * ) ( *. ) a b
  | Concat (a, b) -> begin
    match (eval row a, eval row b) with
    | Value.Text x, Value.Text y -> Value.Text (x ^ y)
    | va, vb ->
      type_error "concat of non-text values %s and %s" (Value.to_string va) (Value.to_string vb)
  end
  | Is_null a -> Value.Bool (eval row a = Value.Null)
  | Like (a, pattern) -> begin
    match eval row a with
    | Value.Text s -> Value.Bool (like_match ~pattern s)
    | Value.Null | Value.Int _ | Value.Float _ | Value.Bool _ -> Value.Bool false
  end

and arith row name int_op float_op a b =
  match (eval row a, eval row b) with
  | Value.Int x, Value.Int y -> Value.Int (int_op x y)
  | (Value.Int _ | Value.Float _), Value.Null | Value.Null, (Value.Int _ | Value.Float _) ->
    Value.Null
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
    let x = Value.as_float (eval row a) and y = Value.as_float (eval row b) in
    Value.Float (float_op x y)
  | va, vb ->
    type_error "arithmetic %s on %s and %s" name (Value.to_string va) (Value.to_string vb)

and eval_bool row expr =
  match eval row expr with
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> type_error "expected boolean, got %s" (Value.to_string v)

let columns expr =
  let acc = ref [] in
  let rec walk = function
    | Const _ -> ()
    | Col i -> if not (List.mem i !acc) then acc := i :: !acc
    | Cmp (_, a, b) | And (a, b) | Or (a, b) | Add (a, b) | Sub (a, b) | Mul (a, b)
    | Concat (a, b) ->
      walk a;
      walk b
    | Not a | Is_null a | Like (a, _) -> walk a
  in
  walk expr;
  List.sort Stdlib.compare !acc

let col schema name =
  match Schema.column_index schema name with
  | idx -> Col idx
  | exception Not_found ->
    invalid_arg (Printf.sprintf "Expr.col: unknown column %s.%s" schema.Schema.table_name name)

let i x = Const (Value.Int x)
let f x = Const (Value.Float x)
let s x = Const (Value.Text x)
let b x = Const (Value.Bool x)
let ( = ) a b = Cmp (Eq, a, b)
let ( <> ) a b = Cmp (Ne, a, b)
let ( < ) a b = Cmp (Lt, a, b)
let ( <= ) a b = Cmp (Le, a, b)
let ( > ) a b = Cmp (Gt, a, b)
let ( >= ) a b = Cmp (Ge, a, b)
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
let not_ a = Not a
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let like a pattern = Like (a, pattern)

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Col idx -> Format.fprintf ppf "$%d" idx
  | Cmp (op, a, b) ->
    let sym =
      match op with Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
    in
    Format.fprintf ppf "(%a %s %a)" pp a sym pp b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf ppf "(NOT %a)" pp a
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Concat (a, b) -> Format.fprintf ppf "(%a || %a)" pp a pp b
  | Is_null a -> Format.fprintf ppf "(%a IS NULL)" pp a
  | Like (a, pattern) -> Format.fprintf ppf "(%a LIKE %S)" pp a pattern

(** Multiversion row store for one table.

    Each key maps to a version chain ordered newest-first. A read at
    snapshot [v] returns the newest version with number [<= v]; a [None]
    row is a deletion tombstone. Versions must be installed in strictly
    increasing version order per key (the replicated system guarantees
    this because commits apply in the certifier's total order). *)

type key = Value.t array

(** Lexicographic order on keys. *)
module Key_order : sig
  type t = key

  val compare : t -> t -> int
end

type t

val create : unit -> t

val install : t -> key -> version:int -> Value.t array option -> unit
(** Prepend a version ([None] = delete). Raises [Invalid_argument] if
    [version] is not greater than the key's newest version. *)

val read : t -> key -> at:int -> Value.t array option
(** Visible row at snapshot [at], or [None] if absent/deleted. *)

val latest_version : t -> key -> int option
(** Version number of the newest version of the key (including
    tombstones); [None] if the key was never written. *)

val key_count : t -> int
(** Number of keys ever written (including currently-deleted ones). *)

val version_count : t -> int
(** Total stored versions across all keys. *)

val iter_keys_ordered : t -> (key -> unit) -> unit
(** All keys in ascending key order (visibility not checked). *)

val iter_keys_range : t -> ?lo:key -> ?hi:key -> (key -> unit) -> unit
(** Keys in [\[lo, hi\]] (inclusive bounds, either optional) in ascending
    order. Keys are compared lexicographically, so a one-column prefix
    bound selects all composite keys starting at/before that prefix. *)

val fold_visible : t -> at:int -> init:'a -> f:('a -> key -> Value.t array -> 'a) -> 'a
(** Fold over rows visible at snapshot [at], ascending key order. *)

val fold_chains :
  t -> init:'a -> f:('a -> key -> (int * Value.t array option) list -> 'a) -> 'a
(** Fold over every key's full version chain (newest first), ascending
    key order. Used by checkpointing. *)

val gc : t -> keep_after:int -> int
(** Drop versions that can no longer be seen by any snapshot [>
    keep_after]: for each key, keep all versions newer than [keep_after]
    plus the newest one at or below it. Returns versions removed. *)

type key = Value.t array

module Key_order = struct
  type t = key

  let compare a b =
    let la = Array.length a and lb = Array.length b in
    let rec go i =
      if i >= la && i >= lb then 0
      else if i >= la then -1
      else if i >= lb then 1
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
end

module Key_map = Map.Make (Key_order)

type version = { version : int; row : Value.t array option }

type t = {
  chains : (key, version list ref) Hashtbl.t;
  mutable ordered : unit Key_map.t;  (* key directory for ordered scans *)
}

let create () = { chains = Hashtbl.create 256; ordered = Key_map.empty }

let install t key ~version row =
  match Hashtbl.find_opt t.chains key with
  | None ->
    Hashtbl.add t.chains key (ref [ { version; row } ]);
    t.ordered <- Key_map.add key () t.ordered
  | Some chain -> begin
    match !chain with
    | { version = newest; _ } :: _ when newest >= version ->
      invalid_arg
        (Printf.sprintf "Mvcc.install: version %d not above newest %d" version newest)
    | versions -> chain := { version; row } :: versions
  end

let read t key ~at =
  match Hashtbl.find_opt t.chains key with
  | None -> None
  | Some chain ->
    let rec visible = function
      | [] -> None
      | { version; row } :: rest -> if version <= at then row else visible rest
    in
    visible !chain

let latest_version t key =
  match Hashtbl.find_opt t.chains key with
  | None -> None
  | Some chain -> ( match !chain with [] -> None | { version; _ } :: _ -> Some version)

let key_count t = Hashtbl.length t.chains

let version_count t =
  Hashtbl.fold (fun _ chain acc -> acc + List.length !chain) t.chains 0

let iter_keys_ordered t f = Key_map.iter (fun key () -> f key) t.ordered

exception Range_done

let iter_keys_range t ?lo ?hi f =
  let seq =
    match lo with
    | Some lo -> Key_map.to_seq_from lo t.ordered
    | None -> Key_map.to_seq t.ordered
  in
  try
    Seq.iter
      (fun (key, ()) ->
        (match hi with
        | Some hi when Key_order.compare key hi > 0 -> raise Range_done
        | Some _ | None -> ());
        f key)
      seq
  with Range_done -> ()

let fold_visible t ~at ~init ~f =
  Key_map.fold
    (fun key () acc ->
      match read t key ~at with None -> acc | Some row -> f acc key row)
    t.ordered init

let fold_chains t ~init ~f =
  Key_map.fold
    (fun key () acc ->
      match Hashtbl.find_opt t.chains key with
      | None -> acc
      | Some chain -> f acc key (List.map (fun { version; row } -> (version, row)) !chain))
    t.ordered init

let gc t ~keep_after =
  let removed = ref 0 in
  Hashtbl.iter
    (fun _ chain ->
      (* Keep every version newer than the horizon, plus the newest one at
         or below it (still visible to snapshots above the horizon). *)
      let rec trim kept = function
        | [] -> List.rev kept
        | ({ version; _ } as v) :: rest ->
          if version > keep_after then trim (v :: kept) rest
          else begin
            removed := !removed + List.length rest;
            List.rev (v :: kept)
          end
      in
      chain := trim [] !chain)
    t.chains;
  !removed

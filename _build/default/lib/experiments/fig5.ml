let replica_counts points =
  List.sort_uniq compare (List.map (fun p -> p.Tpcw_sweep.replicas) points)

let panel points ~mix ~metric ~label =
  let header =
    "replicas" :: List.map Core.Consistency.to_string Core.Consistency.all
  in
  let rows =
    List.map
      (fun n ->
        string_of_int n
        :: List.map
             (fun mode ->
               match
                 List.find_opt
                   (fun p ->
                     p.Tpcw_sweep.mix = mix && p.Tpcw_sweep.mode = mode
                     && p.Tpcw_sweep.replicas = n)
                   points
               with
               | Some p -> Report.fmt_f (metric p.Tpcw_sweep.summary)
               | None -> "-")
             Core.Consistency.all)
      (replica_counts points)
  in
  let series =
    List.map
      (fun mode ->
        ( Core.Consistency.to_string mode,
          List.filter_map
            (fun p ->
              if p.Tpcw_sweep.mix = mix && p.Tpcw_sweep.mode = mode then
                Some (float_of_int p.Tpcw_sweep.replicas, metric p.Tpcw_sweep.summary)
              else None)
            points ))
      Core.Consistency.all
  in
  Report.section
    (Printf.sprintf "Figure 5: TPC-W %s — %s (scaled load)" (Workload.Tpcw.mix_name mix)
       label)
  ^ "\n" ^ Report.table ~header rows ^ "\n"
  ^ Plot.chart ~series ~y_label:label ~x_label:"replicas" ()

let render points =
  let mixes =
    List.filter
      (fun mix -> List.exists (fun p -> p.Tpcw_sweep.mix = mix) points)
      [ Workload.Tpcw.Browsing; Workload.Tpcw.Shopping; Workload.Tpcw.Ordering ]
  in
  String.concat "\n"
    (List.concat_map
       (fun mix ->
         [
           panel points ~mix ~metric:(fun s -> s.Runner.tps) ~label:"throughput (TPS)";
           panel points ~mix
             ~metric:(fun s -> s.Runner.response_ms)
             ~label:"response time (ms)";
         ])
       mixes)

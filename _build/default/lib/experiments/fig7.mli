(** Figure 7: TPC-W response time under fixed load (shopping: 80 clients,
    ordering: 50 clients), replicas 1–8. Lazy configurations' response
    falls as replicas are added; the eager configuration's rises. *)

val render : Tpcw_sweep.point list -> string

(** Figure 6: TPC-W synchronization delay under scaled load (shopping and
    ordering mixes): the synchronization start delay for the lazy
    configurations and the global commit delay for the eager one. *)

val render : Tpcw_sweep.point list -> string

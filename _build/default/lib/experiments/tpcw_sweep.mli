(** TPC-W replica-count sweeps shared by Figures 5, 6 and 7.

    Scaled load ("replication for higher throughput"): clients = k x
    replicas with k = 100 / 80 / 50 for browsing / shopping / ordering.
    Fixed load ("replication for lower response time"): clients = k
    regardless of replica count. *)

type point = {
  mix : Workload.Tpcw.mix;
  mode : Core.Consistency.mode;
  replicas : int;
  summary : Runner.summary;
}

val clients_per_replica : Workload.Tpcw.mix -> int

val scaled :
  ?config:Core.Config.t ->
  ?params:Workload.Tpcw.params ->
  ?mixes:Workload.Tpcw.mix list ->
  ?replica_counts:int list ->
  ?warmup_ms:float ->
  ?measure_ms:float ->
  unit ->
  point list

val fixed :
  ?config:Core.Config.t ->
  ?params:Workload.Tpcw.params ->
  ?mixes:Workload.Tpcw.mix list ->
  ?replica_counts:int list ->
  ?warmup_ms:float ->
  ?measure_ms:float ->
  unit ->
  point list

val select :
  point list -> mix:Workload.Tpcw.mix -> mode:Core.Consistency.mode ->
  (int * Runner.summary) list
(** Points of one curve, ascending replica count. *)

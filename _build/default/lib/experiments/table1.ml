type row = {
  txn : string;
  updated : string list;
  v_system : int;
  v_a : int;
  v_b : int;
  v_c : int;
}

(* The commit sequence of Table I. *)
let commits =
  [
    ("T1", [ "A" ]);
    ("T2", [ "B"; "C" ]);
    ("T3", [ "B" ]);
    ("T4", [ "C" ]);
    ("T5", [ "B"; "C" ]);
    ("T6", [ "A" ]);
  ]

let config = { Core.Config.default with replicas = 2 }

let drive upto =
  let lb = Core.Load_balancer.create config ~mode:Core.Consistency.Fine in
  List.iteri
    (fun i (_, tables) ->
      if i < upto then
        Core.Load_balancer.note_commit_ack lb ~sid:0 ~version:(i + 1)
          ~tables_written:tables)
    commits;
  lb

let rows () =
  List.mapi
    (fun i (txn, updated) ->
      let lb = drive (i + 1) in
      {
        txn;
        updated;
        v_system = Core.Load_balancer.v_system lb;
        v_a = Core.Load_balancer.table_version lb "A";
        v_b = Core.Load_balancer.table_version lb "B";
        v_c = Core.Load_balancer.table_version lb "C";
      })
    commits

let fine_start_for_a () =
  (* After T5: a new transaction reading/writing only A. *)
  let lb = drive 5 in
  Core.Load_balancer.start_version lb ~sid:1 ~table_set:[ "A" ]

let coarse_start_after_t5 () =
  let lb = Core.Load_balancer.create config ~mode:Core.Consistency.Coarse in
  List.iteri
    (fun i (_, tables) ->
      if i < 5 then
        Core.Load_balancer.note_commit_ack lb ~sid:0 ~version:(i + 1)
          ~tables_written:tables)
    commits;
  Core.Load_balancer.start_version lb ~sid:1 ~table_set:[ "A" ]

let render () =
  let body =
    List.map
      (fun r ->
        [
          r.txn;
          String.concat "," r.updated;
          string_of_int r.v_system;
          string_of_int r.v_a;
          string_of_int r.v_b;
          string_of_int r.v_c;
        ])
      (rows ())
  in
  Report.section "Table I: database and table versions"
  ^ "\n"
  ^ Report.table ~header:[ "Txn"; "Updated tables"; "V_system"; "V_A"; "V_B"; "V_C" ] body
  ^ Printf.sprintf
      "\nNew transaction on table A after T5: fine-grained start version = %d, \
       coarse-grained = %d\n"
      (fine_start_for_a ()) (coarse_start_after_t5 ())

lib/experiments/fig7.mli: Tpcw_sweep

lib/experiments/fig7.ml: Core List Printf Report Runner String Tpcw_sweep Workload

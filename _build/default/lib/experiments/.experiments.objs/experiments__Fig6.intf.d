lib/experiments/fig6.mli: Tpcw_sweep

lib/experiments/fig5.mli: Tpcw_sweep

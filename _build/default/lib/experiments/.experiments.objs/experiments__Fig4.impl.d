lib/experiments/fig4.ml: Array Core List Printf Report Runner String Workload

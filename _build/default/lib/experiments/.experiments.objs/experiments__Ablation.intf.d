lib/experiments/ablation.mli:

lib/experiments/table1.ml: Core List Printf Report String

lib/experiments/fig6.ml: Core List Printf Report Runner String Tpcw_sweep Workload

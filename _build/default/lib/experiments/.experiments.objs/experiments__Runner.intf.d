lib/experiments/runner.mli: Core Workload

lib/experiments/report.ml: Float List Option Printf String

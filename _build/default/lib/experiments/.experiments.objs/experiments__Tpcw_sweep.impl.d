lib/experiments/tpcw_sweep.ml: Core List Runner Workload

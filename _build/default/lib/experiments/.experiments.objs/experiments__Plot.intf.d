lib/experiments/plot.mli:

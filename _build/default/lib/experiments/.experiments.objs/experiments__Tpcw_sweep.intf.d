lib/experiments/tpcw_sweep.mli: Core Runner Workload

lib/experiments/fig3.ml: Core List Option Plot Report Runner Workload

lib/experiments/runner.ml: Array Core List Workload

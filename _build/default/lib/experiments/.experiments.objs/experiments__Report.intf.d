lib/experiments/report.mli:

lib/experiments/fig5.ml: Core List Plot Printf Report Runner String Tpcw_sweep Workload

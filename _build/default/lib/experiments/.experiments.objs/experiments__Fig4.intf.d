lib/experiments/fig4.mli: Core Workload

lib/experiments/fig3.mli: Core Runner Workload

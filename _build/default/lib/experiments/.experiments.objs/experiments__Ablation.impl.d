lib/experiments/ablation.ml: Core List Printf Report Workload

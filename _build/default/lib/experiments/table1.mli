(** Table I of the paper: database and table version accounting under the
    fine-grained configuration.

    Six update transactions over tables A, B, C commit in order; the
    table shows [V_system] and each [V_t] after every commit, plus the
    start-version comparison for a new transaction on table A only
    (fine-grained needs [V_local >= 1]; coarse-grained needs
    [V_local >= 5]). *)

type row = {
  txn : string;
  updated : string list;
  v_system : int;
  v_a : int;
  v_b : int;
  v_c : int;
}

val rows : unit -> row list
(** The six rows of Table I, computed by driving a real
    {!Core.Load_balancer}. *)

val fine_start_for_a : unit -> int
(** Required start version for a transaction with table-set [{A}] after
    T5 commits (= 1 in the paper). *)

val coarse_start_after_t5 : unit -> int
(** Required start version under the coarse configuration (= 5). *)

val render : unit -> string

(** Figure 3: micro-benchmark throughput vs. update-transaction ratio.

    8 replicas, 80 closed-loop clients, 40 tables x 10,000 rows; the
    number of update transaction types sweeps 0..40. One curve per
    consistency configuration. *)

type point = {
  update_types : int;  (** of 40 transaction types *)
  summaries : (Core.Consistency.mode * Runner.summary) list;
}

val run :
  ?config:Core.Config.t ->
  ?params:Workload.Microbench.params ->
  ?clients:int ->
  ?update_points:int list ->
  ?warmup_ms:float ->
  ?measure_ms:float ->
  unit ->
  point list

val render : point list -> string

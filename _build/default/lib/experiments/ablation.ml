type row = { label : string; cells : (string * float) list }

let params = { Workload.Microbench.default with rows = 2_000 }

let base_config = Core.Config.default

let run_with ~config ~workload ~clients ~measure_ms =
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Coarse
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  Core.Client.spawn_many cluster ~n:clients ~first_sid:0 workload;
  Core.Cluster.run_for cluster ~warmup_ms:1_500.0 ~measure_ms;
  cluster

let summary cluster =
  let m = Core.Cluster.metrics cluster in
  (m, Core.Metrics.throughput_tps m, Core.Metrics.mean_response_ms m)

(* 1. Writeset shipping vs re-execution: the "re-execute" configuration
   prices a refresh transaction like running the update statements from
   scratch. *)
let apply_vs_reexec ?(clients = 80) ?(update_types = 20) ?(measure_ms = 6_000.0) () =
  let p = { params with Workload.Microbench.update_types } in
  let variants =
    [
      ("writeset shipping (paper)", base_config);
      ( "re-execute at replicas",
        {
          base_config with
          Core.Config.ws_apply_base_ms =
            base_config.Core.Config.stmt_base_ms +. base_config.Core.Config.commit_ms;
          ws_apply_row_ms = base_config.Core.Config.row_write_ms;
        } );
    ]
  in
  List.map
    (fun (label, config) ->
      let cluster =
        run_with ~config ~workload:(Workload.Microbench.workload p) ~clients ~measure_ms
      in
      let m, tps, resp = summary cluster in
      {
        label;
        cells =
          [
            ("TPS", tps); ("resp_ms", resp);
            ("version_ms", Core.Metrics.mean_stage_ms m Core.Metrics.Version);
            ("sync_ms", Core.Metrics.mean_stage_ms m Core.Metrics.Sync);
          ];
      })
    variants

(* 2. Table-set granularity: span update transactions over more tables;
   report the fine- vs coarse-grained start delays. *)
let table_span ?(clients = 80) ?(spans = [ 1; 2; 4; 8; 16 ]) ?(measure_ms = 6_000.0) () =
  let p = { params with Workload.Microbench.update_types = 10 } in
  List.concat_map
    (fun span ->
      List.map
        (fun mode ->
          let cluster =
            Core.Cluster.create ~config:base_config ~mode
              ~schemas:(Workload.Microbench.schemas p)
              ~load:(Workload.Microbench.load p)
              ()
          in
          Core.Client.spawn_many cluster ~n:clients ~first_sid:0
            (Workload.Microbench.span_workload p ~span);
          Core.Cluster.run_for cluster ~warmup_ms:1_500.0 ~measure_ms;
          let m, tps, resp = summary cluster in
          {
            label = Printf.sprintf "span=%d %s" span (Core.Consistency.to_string mode);
            cells =
              [
                ("TPS", tps); ("resp_ms", resp);
                ("version_ms", Core.Metrics.mean_stage_ms m Core.Metrics.Version);
              ];
          })
        [ Core.Consistency.Fine; Core.Consistency.Coarse ])
    spans

(* 3. Early certification under a high-conflict workload. *)
let early_certification ?(clients = 80) ?(measure_ms = 6_000.0) () =
  let p = { params with Workload.Microbench.update_types = 40 } in
  List.map
    (fun (label, early) ->
      let config = { base_config with Core.Config.early_certification = early } in
      let cluster =
        run_with ~config
          ~workload:(Workload.Microbench.hot_workload p ~hot_rows:40)
          ~clients ~measure_ms
      in
      let m, tps, resp = summary cluster in
      {
        label;
        cells =
          [
            ("TPS", tps); ("resp_ms", resp);
            ("abort_pct", 100.0 *. Core.Metrics.abort_rate m);
            ("certify_ms", Core.Metrics.mean_stage_ms m Core.Metrics.Certify);
          ];
      })
    [ ("early certification on", true); ("early certification off", false) ]

(* 4. Routing policy. *)
let routing ?(clients = 80) ?(measure_ms = 6_000.0) () =
  let p = { params with Workload.Microbench.update_types = 10 } in
  List.map
    (fun (label, routing) ->
      let config = { base_config with Core.Config.routing } in
      let cluster =
        run_with ~config ~workload:(Workload.Microbench.workload p) ~clients ~measure_ms
      in
      let m, tps, resp = summary cluster in
      {
        label;
        cells =
          [
            ("TPS", tps); ("resp_ms", resp);
            ("p99_ms", Core.Metrics.percentile_response_ms m 99.0);
          ];
      })
    [
      ("least-active (paper)", Core.Config.Least_active);
      ("round-robin", Core.Config.Round_robin);
      ("random", Core.Config.Random_replica);
      ("session-affinity", Core.Config.Session_affinity);
    ]

let render ~title rows =
  match rows with
  | [] -> Report.section title ^ "\n(no data)\n"
  | first :: _ ->
    let header = "variant" :: List.map fst first.cells in
    let body =
      List.map (fun r -> r.label :: List.map (fun (_, v) -> Report.fmt_f v) r.cells) rows
    in
    Report.section title ^ "\n" ^ Report.table ~header body

(** ASCII table rendering for experiment output. *)

val table : header:string list -> string list list -> string
(** Render rows under a header with aligned columns. *)

val fmt_f : float -> string
(** Compact float: "123", "12.3", "1.23". *)

val section : string -> string
(** A titled separator line. *)

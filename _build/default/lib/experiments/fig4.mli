(** Figure 4: micro-benchmark latency breakdown by transaction stage,
    for the 25% and 100% update mixes (8 replicas, 80 clients).

    Stages follow §V.A: version / queries / certify / sync / commit /
    global. Reported per configuration as the mean over all committed
    transactions (read-only transactions contribute zeros to the stages
    they lack, matching the paper's stacked bars). *)

type breakdown = {
  mode : Core.Consistency.mode;
  stage_ms : float array;  (** indexed by {!Core.Metrics.stage} *)
  total_ms : float;
}

type result = {
  update_pct : int;
  breakdowns : breakdown list;
}

val run :
  ?config:Core.Config.t ->
  ?params:Workload.Microbench.params ->
  ?clients:int ->
  ?mixes:int list ->
  ?warmup_ms:float ->
  ?measure_ms:float ->
  unit ->
  result list
(** [mixes] are update percentages (default [\[25; 100\]]); each maps to
    [update_types = pct * tables / 100]. *)

val render : result list -> string

type breakdown = {
  mode : Core.Consistency.mode;
  stage_ms : float array;
  total_ms : float;
}

type result = {
  update_pct : int;
  breakdowns : breakdown list;
}

let run ?(config = Core.Config.default) ?(params = Workload.Microbench.default)
    ?(clients = 80) ?(mixes = [ 25; 100 ]) ?(warmup_ms = 2_000.0) ?(measure_ms = 8_000.0)
    () =
  List.map
    (fun update_pct ->
      let update_types = update_pct * params.Workload.Microbench.tables / 100 in
      let breakdowns =
        List.map
          (fun mode ->
            let s =
              Runner.run_micro ~config ~mode
                ~params:{ params with Workload.Microbench.update_types }
                ~clients ~warmup_ms ~measure_ms ()
            in
            (* The global stage exists only for update transactions; use
               the update-transaction mean for it, the overall mean for
               the rest (the paper's bars are per update transaction for
               global). *)
            let stage_ms = Array.copy s.Runner.stage_ms in
            stage_ms.(Core.Metrics.stage_index Core.Metrics.Global) <-
              s.Runner.stage_update_ms.(Core.Metrics.stage_index Core.Metrics.Global);
            { mode; stage_ms; total_ms = Array.fold_left ( +. ) 0.0 stage_ms })
          Core.Consistency.all
      in
      { update_pct; breakdowns })
    mixes

let render results =
  String.concat "\n"
    (List.map
       (fun r ->
         let header =
           "config"
           :: (List.map Core.Metrics.stage_name Core.Metrics.stages @ [ "total" ])
         in
         let rows =
           List.map
             (fun b ->
               Core.Consistency.to_string b.mode
               :: (Array.to_list (Array.map Report.fmt_f b.stage_ms)
                  @ [ Report.fmt_f b.total_ms ]))
             r.breakdowns
         in
         Report.section
           (Printf.sprintf "Figure 4: latency breakdown, %d%% update mix (ms)" r.update_pct)
         ^ "\n" ^ Report.table ~header rows)
       results)

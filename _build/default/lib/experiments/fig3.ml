type point = {
  update_types : int;
  summaries : (Core.Consistency.mode * Runner.summary) list;
}

let run ?(config = Core.Config.default) ?(params = Workload.Microbench.default)
    ?(clients = 80) ?(update_points = [ 0; 5; 10; 15; 20; 25; 30; 35; 40 ])
    ?(warmup_ms = 2_000.0) ?(measure_ms = 8_000.0) () =
  List.map
    (fun update_types ->
      let summaries =
        List.map
          (fun mode ->
            let s =
              Runner.run_micro ~config ~mode
                ~params:{ params with Workload.Microbench.update_types }
                ~clients ~warmup_ms ~measure_ms ()
            in
            (mode, s))
          Core.Consistency.all
      in
      { update_types; summaries })
    update_points

let render points =
  let header =
    "upd types"
    :: List.concat_map
         (fun mode ->
           let name = Core.Consistency.to_string mode in
           [ name ^ " TPS"; name ^ " ms" ])
         Core.Consistency.all
  in
  let rows =
    List.map
      (fun p ->
        string_of_int p.update_types
        :: List.concat_map
             (fun mode ->
               match List.assoc_opt mode p.summaries with
               | Some s ->
                 [ Report.fmt_f s.Runner.tps; Report.fmt_f s.Runner.response_ms ]
               | None -> [ "-"; "-" ])
             Core.Consistency.all)
      points
  in
  let series =
    List.map
      (fun mode ->
        ( Core.Consistency.to_string mode,
          List.filter_map
            (fun p ->
              Option.map
                (fun s -> (float_of_int p.update_types, s.Runner.tps))
                (List.assoc_opt mode p.summaries))
            points ))
      Core.Consistency.all
  in
  Report.section "Figure 3: micro-benchmark throughput vs update ratio (8 replicas)"
  ^ "\n" ^ Report.table ~header rows ^ "\n"
  ^ Plot.chart ~series ~y_label:"TPS" ~x_label:"update transaction types (of 40)" ()

(** Ablation benchmarks for the design choices DESIGN.md calls out:

    {ol
    {- {!apply_vs_reexec}: writeset shipping (cheap refresh application)
       vs re-executing updates at every replica. The cheap-apply design
       is what lets the lazy configurations scale.}
    {- {!table_span}: fine-grained synchronization as update
       transactions touch more tables — the fine-grained start delay
       converges to the coarse-grained one.}
    {- {!early_certification}: hidden-deadlock avoidance on/off under a
       high-conflict workload — certifier-abort rate and wasted work.}
    {- {!routing}: least-active routing vs round-robin vs random.}} *)

type row = { label : string; cells : (string * float) list }

val apply_vs_reexec :
  ?clients:int -> ?update_types:int -> ?measure_ms:float -> unit -> row list

val table_span : ?clients:int -> ?spans:int list -> ?measure_ms:float -> unit -> row list

val early_certification : ?clients:int -> ?measure_ms:float -> unit -> row list

val routing : ?clients:int -> ?measure_ms:float -> unit -> row list

val render : title:string -> row list -> string

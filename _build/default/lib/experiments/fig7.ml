let render points =
  let mixes =
    List.filter
      (fun mix -> List.exists (fun p -> p.Tpcw_sweep.mix = mix) points)
      [ Workload.Tpcw.Shopping; Workload.Tpcw.Ordering ]
  in
  let replica_counts =
    List.sort_uniq compare (List.map (fun p -> p.Tpcw_sweep.replicas) points)
  in
  String.concat "\n"
    (List.map
       (fun mix ->
         let header =
           "replicas" :: List.map Core.Consistency.to_string Core.Consistency.all
         in
         let rows =
           List.map
             (fun n ->
               string_of_int n
               :: List.map
                    (fun mode ->
                      match
                        List.find_opt
                          (fun p ->
                            p.Tpcw_sweep.mix = mix && p.Tpcw_sweep.mode = mode
                            && p.Tpcw_sweep.replicas = n)
                          points
                      with
                      | Some p -> Report.fmt_f p.Tpcw_sweep.summary.Runner.response_ms
                      | None -> "-")
                    Core.Consistency.all)
             replica_counts
         in
         Report.section
           (Printf.sprintf "Figure 7: TPC-W %s — response time (ms, fixed load)"
              (Workload.Tpcw.mix_name mix))
         ^ "\n" ^ Report.table ~header rows)
       mixes)

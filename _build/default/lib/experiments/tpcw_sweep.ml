type point = {
  mix : Workload.Tpcw.mix;
  mode : Core.Consistency.mode;
  replicas : int;
  summary : Runner.summary;
}

let clients_per_replica = function
  | Workload.Tpcw.Browsing -> 100
  | Workload.Tpcw.Shopping -> 80
  | Workload.Tpcw.Ordering -> 50

let all_mixes = [ Workload.Tpcw.Browsing; Workload.Tpcw.Shopping; Workload.Tpcw.Ordering ]

let sweep ~scaled_load ~config ~params ~mixes ~replica_counts ~warmup_ms ~measure_ms =
  List.concat_map
    (fun mix ->
      List.concat_map
        (fun replicas ->
          let clients =
            if scaled_load then clients_per_replica mix * replicas
            else clients_per_replica mix
          in
          List.map
            (fun mode ->
              let config = { config with Core.Config.replicas } in
              let summary =
                Runner.run_tpcw ~config ~mode ~params ~mix ~clients ~warmup_ms
                  ~measure_ms ()
              in
              { mix; mode; replicas; summary })
            Core.Consistency.all)
        replica_counts)
    mixes

let scaled ?(config = Core.Config.tpcw) ?(params = Workload.Tpcw.default)
    ?(mixes = all_mixes) ?(replica_counts = [ 1; 2; 3; 4; 5; 6; 7; 8 ])
    ?(warmup_ms = 4_000.0) ?(measure_ms = 16_000.0) () =
  sweep ~scaled_load:true ~config ~params ~mixes ~replica_counts ~warmup_ms ~measure_ms

let fixed ?(config = Core.Config.tpcw) ?(params = Workload.Tpcw.default)
    ?(mixes = [ Workload.Tpcw.Shopping; Workload.Tpcw.Ordering ])
    ?(replica_counts = [ 1; 2; 3; 4; 5; 6; 7; 8 ]) ?(warmup_ms = 4_000.0)
    ?(measure_ms = 16_000.0) () =
  sweep ~scaled_load:false ~config ~params ~mixes ~replica_counts ~warmup_ms ~measure_ms

let select points ~mix ~mode =
  points
  |> List.filter (fun p -> p.mix = mix && p.mode = mode)
  |> List.sort (fun a b -> compare a.replicas b.replicas)
  |> List.map (fun p -> (p.replicas, p.summary))

(** Figure 5: TPC-W throughput and response time under scaled load, one
    panel pair per mix (browsing / shopping / ordering), replicas 1–8. *)

val render : Tpcw_sweep.point list -> string
(** Render the six panels (a)–(f) from a {!Tpcw_sweep.scaled} result. *)

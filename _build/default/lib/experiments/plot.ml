let markers = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let chart ?(width = 56) ?(height = 16) ?(y_label = "") ?(x_label = "") ~series () =
  let series = List.filter (fun (_, pts) -> pts <> []) series in
  let points = List.concat_map snd series in
  if points = [] then "(no data)\n"
  else begin
    let xs = List.map fst points and ys = List.map snd points in
    let x_min = List.fold_left Float.min infinity xs in
    let x_max = List.fold_left Float.max neg_infinity xs in
    let y_min = Float.min 0.0 (List.fold_left Float.min infinity ys) in
    let y_max = List.fold_left Float.max neg_infinity ys in
    let y_max = if y_max <= y_min then y_min +. 1.0 else y_max in
    let x_span = if x_max <= x_min then 1.0 else x_max -. x_min in
    let grid = Array.make_matrix height width ' ' in
    let place (x, y) marker =
      let cx =
        int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1) +. 0.5)
      in
      let cy =
        int_of_float ((y -. y_min) /. (y_max -. y_min) *. float_of_int (height - 1) +. 0.5)
      in
      let cx = max 0 (min (width - 1) cx) in
      let cy = max 0 (min (height - 1) cy) in
      (* Row 0 is the top of the chart. *)
      let row = height - 1 - cy in
      grid.(row).(cx) <- (if grid.(row).(cx) = ' ' then marker else '?')
    in
    List.iteri
      (fun i (_, pts) -> List.iter (fun pt -> place pt markers.(i mod Array.length markers)) pts)
      series;
    let buf = Buffer.create 1024 in
    let y_axis_width = 9 in
    Array.iteri
      (fun row line ->
        let y_value =
          y_max -. (float_of_int row /. float_of_int (height - 1) *. (y_max -. y_min))
        in
        let label =
          if row = 0 || row = height - 1 || row = height / 2 then
            Printf.sprintf "%8.4g" y_value
          else String.make 8 ' '
        in
        Buffer.add_string buf label;
        Buffer.add_string buf " |";
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make y_axis_width ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%s %-8.4g%s%8.4g  %s\n" (String.make y_axis_width ' ') x_min
         (String.make (max 1 (width - 18)) ' ')
         x_max x_label);
    if y_label <> "" then Buffer.add_string buf (Printf.sprintf "  y: %s\n" y_label);
    let legend =
      List.mapi
        (fun i (name, _) -> Printf.sprintf "%c=%s" markers.(i mod Array.length markers) name)
        series
    in
    Buffer.add_string buf ("  " ^ String.concat "  " legend ^ "\n");
    Buffer.contents buf
  end

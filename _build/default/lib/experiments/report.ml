let fmt_f x =
  if Float.abs x >= 100.0 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 10.0 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.2f" x

let table ~header rows =
  let all = header :: rows in
  let columns = List.fold_left (fun acc row -> max acc (List.length row)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init columns width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = Option.value (List.nth_opt row c) ~default:"" in
           (* Right-align numbers, left-align the first column. *)
           if c = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell)
         widths)
  in
  let rule =
    String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" ((render_row header :: rule :: List.map render_row rows) @ [ "" ])

let section title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.sprintf "\n%s\n=== %s ===\n%s" bar title bar

(** Minimal ASCII scatter/line charts for experiment output.

    Each series is plotted with its own marker character; axes are
    scaled to the data (y starts at 0 unless values are negative). *)

val chart :
  ?width:int ->
  ?height:int ->
  ?y_label:string ->
  ?x_label:string ->
  series:(string * (float * float) list) list ->
  unit ->
  string
(** Render to a multi-line string. Empty series are skipped; returns
    a placeholder string if no data at all. *)

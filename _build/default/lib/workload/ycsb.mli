(** YCSB-style key-value workload over the replicated store (extension;
    not part of the paper's evaluation, but a standard cloud-serving
    benchmark that exercises skewed access and scan patterns).

    One table, [records] rows of [field_count] text fields; keys are
    drawn from a Zipf distribution with skew [theta]. The standard
    workload mixes A–F are provided. *)

type params = {
  records : int;
  theta : float;  (** Zipf skew; 0 = uniform, YCSB default 0.99 *)
  field_count : int;
  field_length : int;
  scan_length : int;  (** max rows per scan *)
}

val default : params
(** 10,000 records, theta 0.99, 4 x 64-byte fields, scans of <= 50. *)

type mix =
  | A  (** 50% read / 50% update — "update heavy" *)
  | B  (** 95% read / 5% update — "read mostly" *)
  | C  (** 100% read *)
  | D  (** 95% read / 5% insert — "read latest" *)
  | E  (** 95% scan / 5% insert — "short ranges" *)
  | F  (** 50% read / 50% read-modify-write *)

val mix_name : mix -> string

val update_fraction : mix -> float
(** Fraction of transactions that write under the mix. *)

val table : string

val schemas : params -> Storage.Schema.t list

val load : params -> Storage.Database.t -> unit

val request : params -> mix -> Util.Rng.t -> Core.Transaction.request

val workload : params -> mix -> Core.Client.workload
(** Closed loop, zero think time. *)

(** TPC-W workload model (§V.C).

    The online-bookstore schema (10 tables), a deterministic scaled-down
    population, the database transactions behind the 14 web
    interactions, and the three workload mixes. Mix weights are composed
    so the fraction of update transactions matches the paper exactly:
    browsing 5%, shopping 20%, ordering 50%.

    Scaling: the paper uses the standard 10,000-item / 200-EB database
    (~850 MB). We keep 10,000 items and scale the customer/order tables
    down (see {!default}) so an 8-replica cluster fits comfortably in
    memory; all access patterns and table-sets are unchanged. *)

type params = {
  items : int;
  customers : int;
  authors : int;
  countries : int;
  initial_orders : int;
  think_mean_ms : float;
}

val default : params

type mix =
  | Browsing  (** 5% update transactions *)
  | Shopping  (** 20% update transactions *)
  | Ordering  (** 50% update transactions *)

val mix_name : mix -> string

val update_fraction : mix -> float
(** Nominal update-transaction fraction of each mix. *)

(** The database transactions behind the web interactions. *)
type tx =
  | Home
  | New_products
  | Best_sellers
  | Product_detail
  | Search
  | Shopping_cart  (** update *)
  | Customer_registration  (** update *)
  | Buy_request
  | Buy_confirm  (** update *)
  | Order_inquiry
  | Admin_confirm  (** update *)

val tx_name : tx -> string

val is_update_tx : tx -> bool

val weights : mix -> (tx * float) list
(** Sampling weights; sum to 100. *)

val schemas : Storage.Schema.t list

val load : params -> Storage.Database.t -> unit

val request : params -> sid:int -> tx -> Util.Rng.t -> Core.Transaction.request
(** Build one parameter-bound instance of the given transaction. The
    session id keys the client's shopping cart. *)

val sample_tx : mix -> Util.Rng.t -> tx

val workload : params -> mix -> sid:int -> Core.Client.workload
(** Closed-loop with exponential think time [think_mean_ms]. *)

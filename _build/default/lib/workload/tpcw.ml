type params = {
  items : int;
  customers : int;
  authors : int;
  countries : int;
  initial_orders : int;
  think_mean_ms : float;
}

let default =
  {
    items = 10_000;
    customers = 7_200;
    authors = 2_500;
    countries = 92;
    initial_orders = 6_480;
    think_mean_ms = 2_000.0;
  }

type mix = Browsing | Shopping | Ordering

let mix_name = function
  | Browsing -> "browsing"
  | Shopping -> "shopping"
  | Ordering -> "ordering"

let update_fraction = function Browsing -> 0.05 | Shopping -> 0.20 | Ordering -> 0.50

type tx =
  | Home
  | New_products
  | Best_sellers
  | Product_detail
  | Search
  | Shopping_cart
  | Customer_registration
  | Buy_request
  | Buy_confirm
  | Order_inquiry
  | Admin_confirm

let tx_name = function
  | Home -> "home"
  | New_products -> "new_products"
  | Best_sellers -> "best_sellers"
  | Product_detail -> "product_detail"
  | Search -> "search"
  | Shopping_cart -> "shopping_cart"
  | Customer_registration -> "customer_registration"
  | Buy_request -> "buy_request"
  | Buy_confirm -> "buy_confirm"
  | Order_inquiry -> "order_inquiry"
  | Admin_confirm -> "admin_confirm"

let is_update_tx = function
  | Shopping_cart | Customer_registration | Buy_confirm | Admin_confirm -> true
  | Home | New_products | Best_sellers | Product_detail | Search | Buy_request
  | Order_inquiry -> false

(* Weights per mix, composed so update transactions are exactly 5/20/50%
   of the total while the relative read frequencies follow the TPC-W
   interaction mixes. *)
let weights = function
  | Browsing ->
    [
      (Home, 29.0); (New_products, 11.0); (Best_sellers, 11.0); (Product_detail, 21.0);
      (Search, 22.0); (Buy_request, 0.5); (Order_inquiry, 0.5);
      (Shopping_cart, 2.6); (Customer_registration, 1.1); (Buy_confirm, 1.2);
      (Admin_confirm, 0.1);
    ]
  | Shopping ->
    [
      (Home, 16.0); (New_products, 5.0); (Best_sellers, 5.0); (Product_detail, 17.0);
      (Search, 33.7); (Buy_request, 2.6); (Order_inquiry, 0.7);
      (Shopping_cart, 11.6); (Customer_registration, 3.0); (Buy_confirm, 5.3);
      (Admin_confirm, 0.1);
    ]
  | Ordering ->
    [
      (Home, 9.1); (New_products, 0.5); (Best_sellers, 0.5); (Product_detail, 12.4);
      (Search, 14.5); (Buy_request, 12.7); (Order_inquiry, 0.3);
      (Shopping_cart, 16.0); (Customer_registration, 13.0); (Buy_confirm, 20.9);
      (Admin_confirm, 0.1);
    ]

(* --- Schema --- *)

let vi x = Storage.Value.Int x
let vf x = Storage.Value.Float x
let vt x = Storage.Value.Text x

let customer_schema =
  Storage.Schema.make ~name:"customer"
    ~columns:
      [
        ("c_id", Storage.Value.Tint); ("c_uname", Storage.Value.Ttext);
        ("c_fname", Storage.Value.Ttext); ("c_lname", Storage.Value.Ttext);
        ("c_addr_id", Storage.Value.Tint); ("c_email", Storage.Value.Ttext);
        ("c_discount", Storage.Value.Tfloat); ("c_balance", Storage.Value.Tfloat);
        ("c_ytd_pmt", Storage.Value.Tfloat); ("c_data", Storage.Value.Ttext);
      ]
    ~indexes:[ "c_uname" ] ~key:[ "c_id" ] ()

let address_schema =
  Storage.Schema.make ~name:"address"
    ~columns:
      [
        ("addr_id", Storage.Value.Tint); ("addr_street", Storage.Value.Ttext);
        ("addr_city", Storage.Value.Ttext); ("addr_state", Storage.Value.Ttext);
        ("addr_zip", Storage.Value.Ttext); ("addr_co_id", Storage.Value.Tint);
      ]
    ~key:[ "addr_id" ] ()

let country_schema =
  Storage.Schema.make ~name:"country"
    ~columns:
      [
        ("co_id", Storage.Value.Tint); ("co_name", Storage.Value.Ttext);
        ("co_exchange", Storage.Value.Tfloat); ("co_currency", Storage.Value.Ttext);
      ]
    ~key:[ "co_id" ] ()

let author_schema =
  Storage.Schema.make ~name:"author"
    ~columns:
      [
        ("a_id", Storage.Value.Tint); ("a_fname", Storage.Value.Ttext);
        ("a_lname", Storage.Value.Ttext);
      ]
    ~indexes:[ "a_lname" ] ~key:[ "a_id" ] ()

let item_schema =
  Storage.Schema.make ~name:"item"
    ~columns:
      [
        ("i_id", Storage.Value.Tint); ("i_title", Storage.Value.Ttext);
        ("i_a_id", Storage.Value.Tint); ("i_pub_date", Storage.Value.Tint);
        ("i_subject", Storage.Value.Ttext); ("i_srp", Storage.Value.Tfloat);
        ("i_cost", Storage.Value.Tfloat); ("i_stock", Storage.Value.Tint);
        ("i_related", Storage.Value.Tint);
      ]
    ~indexes:[ "i_a_id"; "i_subject" ] ~key:[ "i_id" ] ()

let orders_schema =
  Storage.Schema.make ~name:"orders"
    ~columns:
      [
        ("o_id", Storage.Value.Tint); ("o_c_id", Storage.Value.Tint);
        ("o_date", Storage.Value.Tint); ("o_total", Storage.Value.Tfloat);
        ("o_status", Storage.Value.Ttext); ("o_ship_addr_id", Storage.Value.Tint);
      ]
    ~indexes:[ "o_c_id" ] ~key:[ "o_id" ] ()

let order_line_schema =
  Storage.Schema.make ~name:"order_line"
    ~columns:
      [
        ("ol_o_id", Storage.Value.Tint); ("ol_id", Storage.Value.Tint);
        ("ol_i_id", Storage.Value.Tint); ("ol_qty", Storage.Value.Tint);
        ("ol_discount", Storage.Value.Tfloat);
      ]
    ~indexes:[ "ol_o_id"; "ol_i_id" ] ~key:[ "ol_o_id"; "ol_id" ] ()

let cc_xacts_schema =
  Storage.Schema.make ~name:"cc_xacts"
    ~columns:
      [
        ("cx_o_id", Storage.Value.Tint); ("cx_type", Storage.Value.Ttext);
        ("cx_auth_id", Storage.Value.Ttext); ("cx_xact_amt", Storage.Value.Tfloat);
        ("cx_co_id", Storage.Value.Tint);
      ]
    ~key:[ "cx_o_id" ] ()

let shopping_cart_schema =
  Storage.Schema.make ~name:"shopping_cart"
    ~columns:
      [
        ("sc_id", Storage.Value.Tint); ("sc_time", Storage.Value.Tint);
        ("sc_total", Storage.Value.Tfloat);
      ]
    ~key:[ "sc_id" ] ()

let shopping_cart_line_schema =
  Storage.Schema.make ~name:"shopping_cart_line"
    ~columns:
      [
        ("scl_sc_id", Storage.Value.Tint); ("scl_i_id", Storage.Value.Tint);
        ("scl_qty", Storage.Value.Tint);
      ]
    ~indexes:[ "scl_sc_id" ] ~key:[ "scl_sc_id"; "scl_i_id" ] ()

let schemas =
  [
    customer_schema; address_schema; country_schema; author_schema; item_schema;
    orders_schema; order_line_schema; cc_xacts_schema; shopping_cart_schema;
    shopping_cart_line_schema;
  ]

(* --- Population (deterministic) --- *)

let subjects =
  [| "ARTS"; "BIOGRAPHIES"; "BUSINESS"; "CHILDREN"; "COMPUTERS"; "COOKING"; "HEALTH";
     "HISTORY"; "HOME"; "HUMOR"; "LITERATURE"; "MYSTERY"; "NON-FICTION"; "PARENTING";
     "POLITICS"; "REFERENCE"; "RELIGION"; "ROMANCE"; "SELF-HELP"; "SCIENCE-NATURE";
     "SCIENCE-FICTION"; "SPORTS"; "YOUTH"; "TRAVEL" |]

let subject_of i = subjects.(i mod Array.length subjects)

let load p db =
  let addresses = 2 * p.customers in
  Storage.Database.load db "country"
    (List.init p.countries (fun i ->
         [| vi i; vt (Printf.sprintf "Country%d" i); vf 1.0; vt "USD" |]));
  Storage.Database.load db "address"
    (List.init addresses (fun i ->
         [|
           vi i; vt (Printf.sprintf "%d Main St" i); vt "Springfield"; vt "ST";
           vt (Printf.sprintf "%05d" (i mod 99999)); vi (i mod p.countries);
         |]));
  Storage.Database.load db "customer"
    (List.init p.customers (fun i ->
         [|
           vi i; vt (Printf.sprintf "user%d" i); vt "First"; vt (Printf.sprintf "Last%d" i);
           vi (i mod addresses); vt (Printf.sprintf "user%d@example.com" i);
           vf (float_of_int (i mod 50) /. 100.0); vf 0.0; vf 0.0; vt "customer data";
         |]));
  Storage.Database.load db "author"
    (List.init p.authors (fun i ->
         [| vi i; vt "Author"; vt (Printf.sprintf "Lastname%d" (i mod 500)) |]));
  Storage.Database.load db "item"
    (List.init p.items (fun i ->
         [|
           vi i; vt (Printf.sprintf "Book Title %d" i); vi (i mod p.authors);
           vi (20000000 + i); vt (subject_of i); vf 29.99; vf 19.99; vi (80 + (i mod 20));
           vi ((i + 1) mod p.items);
         |]));
  Storage.Database.load db "orders"
    (List.init p.initial_orders (fun i ->
         [|
           vi i; vi (i mod p.customers); vi (20260000 + i); vf 99.0; vt "SHIPPED";
           vi (i mod addresses);
         |]));
  let order_lines =
    List.concat_map
      (fun o ->
        List.init 3 (fun l ->
            [| vi o; vi l; vi (((o * 7) + l) mod p.items); vi (1 + (l mod 3)); vf 0.0 |]))
      (List.init p.initial_orders (fun i -> i))
  in
  Storage.Database.load db "order_line" order_lines;
  Storage.Database.load db "cc_xacts"
    (List.init p.initial_orders (fun i ->
         [| vi i; vt "VISA"; vt (Printf.sprintf "AUTH%d" i); vf 99.0; vi (i mod p.countries) |]))

(* --- Transactions --- *)

let item_stock_col = Storage.Schema.column_index item_schema "i_stock"
let item_pub_date_col = Storage.Schema.column_index item_schema "i_pub_date"

let get table key = Storage.Query.Get { table; key = [| vi key |] }

let by_index schema table column value ~limit =
  Storage.Query.Select
    {
      table;
      where = Some Storage.Expr.(col schema column = Const value);
      limit = Some limit;
    }

(* A fresh surrogate id: collisions across concurrent clients are
   possible but vanishingly rare, and the certifier aborts them. *)
let fresh_id rng = 1 + Util.Rng.int rng 0x3FFFFFFF

let statements_of p ~sid tx rng =
  let rand_customer () = Util.Rng.int rng p.customers in
  let rand_item () = Util.Rng.int rng p.items in
  match tx with
  | Home ->
    get "customer" (rand_customer ())
    :: List.init 5 (fun _ -> get "item" (rand_item ()))
  | New_products ->
    by_index item_schema "item" "i_subject" (vt (subject_of (rand_item ()))) ~limit:20
    :: List.init 5 (fun _ -> get "author" (Util.Rng.int rng p.authors))
  | Best_sellers ->
    (* Top sellers among the most recent orders: a grouped count over a
       primary-key range of order_line. The spec aggregates the 3,333
       most recent of ~2.6M orders (~0.13%); scaled to our database the
       window is a few dozen orders — also what keeps this interaction's
       cost near the paper's most-expensive-query level rather than a
       full-table aggregation. *)
    let recent = max 0 (p.initial_orders - 33) in
    Storage.Query.Group_count
      {
        table = "order_line";
        group_column = "ol_i_id";
        lo = Some [| vi recent |];
        hi = None;
        limit = 50;
      }
    :: (List.init 10 (fun _ -> get "item" (rand_item ()))
       @ List.init 5 (fun _ -> get "author" (Util.Rng.int rng p.authors)))
  | Product_detail ->
    let item = rand_item () in
    [ get "item" item; get "author" (item mod p.authors) ]
  | Search ->
    [
      by_index item_schema "item" "i_subject" (vt (subject_of (rand_item ()))) ~limit:20;
      by_index item_schema "item" "i_a_id" (vi (Util.Rng.int rng p.authors)) ~limit:20;
    ]
  | Shopping_cart ->
    let n_items = 1 + Util.Rng.int rng 3 in
    let items = List.init n_items (fun _ -> rand_item ()) in
    Storage.Query.Put
      {
        table = "shopping_cart";
        row = [| vi sid; vi 20260701; vf (float_of_int (n_items * 25)) |];
      }
    :: List.concat_map
         (fun item ->
           [
             get "item" item;
             Storage.Query.Put
               {
                 table = "shopping_cart_line";
                 row = [| vi sid; vi item; vi (1 + Util.Rng.int rng 4) |];
               };
           ])
         items
  | Customer_registration ->
    let c_id = fresh_id rng in
    let addr_id = fresh_id rng in
    let co = Util.Rng.int rng p.countries in
    [
      get "country" co;
      Storage.Query.Insert
        {
          table = "address";
          row =
            [| vi addr_id; vt "1 New St"; vt "Newtown"; vt "NT"; vt "00000"; vi co |];
        };
      Storage.Query.Insert
        {
          table = "customer";
          row =
            [|
              vi c_id; vt (Printf.sprintf "newuser%d" c_id); vt "New"; vt "Customer";
              vi addr_id; vt "new@example.com"; vf 0.0; vf 0.0; vf 0.0; vt "";
            |];
        };
    ]
  | Buy_request ->
    [
      get "customer" (rand_customer ());
      get "address" (Util.Rng.int rng (2 * p.customers));
      get "shopping_cart" sid;
      by_index shopping_cart_line_schema "shopping_cart_line" "scl_sc_id" (vi sid) ~limit:10;
    ]
  | Buy_confirm ->
    let o_id = fresh_id rng in
    let n_lines = 1 + Util.Rng.int rng 4 in
    let items = List.init n_lines (fun _ -> rand_item ()) in
    let c_id = rand_customer () in
    [
      get "customer" c_id;
      Storage.Query.Insert
        {
          table = "orders";
          row =
            [|
              vi o_id; vi c_id; vi 20260701; vf (float_of_int (n_lines * 25)); vt "PENDING";
              vi (c_id mod (2 * p.customers));
            |];
        };
    ]
    @ List.concat
        (List.mapi
           (fun l item ->
             [
               Storage.Query.Insert
                 {
                   table = "order_line";
                   row = [| vi o_id; vi l; vi item; vi 1; vf 0.0 |];
                 };
               Storage.Query.Update_key
                 {
                   table = "item";
                   key = [| vi item |];
                   set = [ ("i_stock", Storage.Expr.(Col item_stock_col - i 1)) ];
                 };
             ])
           items)
    @ [
        Storage.Query.Insert
          {
            table = "cc_xacts";
            row =
              [|
                vi o_id; vt "VISA"; vt (Printf.sprintf "AUTH%d" o_id);
                vf (float_of_int (n_lines * 25)); vi 0;
              |];
          };
        Storage.Query.Delete
          {
            table = "shopping_cart_line";
            where = Some Storage.Expr.(col shopping_cart_line_schema "scl_sc_id" = i sid);
          };
      ]
  | Order_inquiry ->
    let c_id = rand_customer () in
    let o_id = Util.Rng.int rng (max 1 p.initial_orders) in
    [
      get "customer" c_id;
      by_index orders_schema "orders" "o_c_id" (vi c_id) ~limit:1;
      (* Order display: the order's lines joined with their items. *)
      Storage.Query.Join
        {
          left = "order_line";
          right = "item";
          left_col = "ol_i_id";
          right_col = "i_id";
          left_where = Some Storage.Expr.(col order_line_schema "ol_o_id" = i o_id);
          limit = Some 10;
        };
    ]
  | Admin_confirm ->
    let item = rand_item () in
    [
      get "item" item;
      Storage.Query.Select { table = "order_line"; where = None; limit = Some 50 };
      Storage.Query.Update_key
        {
          table = "item";
          key = [| vi item |];
          set = [ ("i_pub_date", Storage.Expr.(Col item_pub_date_col + i 1)) ];
        };
    ]

let request p ~sid tx rng =
  Core.Transaction.make ~profile:(tx_name tx) (statements_of p ~sid tx rng)

let sample_tx mix rng =
  let table = weights mix in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 table in
  let roll = Util.Rng.float rng total in
  let rec pick acc = function
    | [] -> fst (List.hd table)
    | (tx, w) :: rest -> if roll < acc +. w then tx else pick (acc +. w) rest
  in
  pick 0.0 table

let workload p mix ~sid =
  {
    Core.Client.think_ms = Core.Client.exp_think ~mean_ms:p.think_mean_ms;
    next_request = (fun rng -> request p ~sid (sample_tx mix rng) rng);
  }

lib/workload/microbench.mli: Core Storage Util

lib/workload/ycsb.mli: Core Storage Util

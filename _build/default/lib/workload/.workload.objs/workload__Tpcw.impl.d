lib/workload/tpcw.ml: Array Core List Printf Storage Util

lib/workload/ycsb.ml: Array Core List Printf Storage String Util

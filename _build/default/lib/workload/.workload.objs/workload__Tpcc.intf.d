lib/workload/tpcc.mli: Check Core Storage Util

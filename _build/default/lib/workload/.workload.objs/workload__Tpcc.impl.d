lib/workload/tpcc.ml: Check Core List Printf Storage Util

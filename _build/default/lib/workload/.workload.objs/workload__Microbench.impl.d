lib/workload/microbench.ml: Core List Printf Storage String Util

lib/workload/tpcw.mli: Core Storage Util

type params = {
  records : int;
  theta : float;
  field_count : int;
  field_length : int;
  scan_length : int;
}

let default =
  { records = 10_000; theta = 0.99; field_count = 4; field_length = 64; scan_length = 50 }

type mix = A | B | C | D | E | F

let mix_name = function
  | A -> "ycsb-a"
  | B -> "ycsb-b"
  | C -> "ycsb-c"
  | D -> "ycsb-d"
  | E -> "ycsb-e"
  | F -> "ycsb-f"

let update_fraction = function
  | A -> 0.5
  | B -> 0.05
  | C -> 0.0
  | D -> 0.05
  | E -> 0.05
  | F -> 0.5

let table = "usertable"

let field_name i = Printf.sprintf "field%d" i

let schemas p =
  [
    Storage.Schema.make ~name:table
      ~columns:
        (("ycsb_key", Storage.Value.Tint)
        :: List.init p.field_count (fun i -> (field_name i, Storage.Value.Ttext)))
      ~key:[ "ycsb_key" ] ();
  ]

(* One shared payload per params: immutable strings alias freely. *)
let payload p = String.make p.field_length 'v'

let load p db =
  let pad = payload p in
  Storage.Database.load db table
    (List.init p.records (fun i ->
         Array.of_list
           (Storage.Value.Int i
           :: List.init p.field_count (fun _ -> Storage.Value.Text pad))))

let zipf_key p rng = Util.Rng.zipf rng ~n:p.records ~theta:p.theta

let fresh_key rng = 1_000_000 + Util.Rng.int rng 0x3FFFFFF

let read_stmt key = Storage.Query.Get { table; key = [| Storage.Value.Int key |] }

let update_stmt p rng key =
  let field = field_name (Util.Rng.int rng p.field_count) in
  Storage.Query.Update_key
    {
      table;
      key = [| Storage.Value.Int key |];
      set = [ (field, Storage.Expr.s (payload p)) ];
    }

let insert_stmt p rng =
  let key = fresh_key rng in
  let pad = payload p in
  Storage.Query.Put
    {
      table;
      row =
        Array.of_list
          (Storage.Value.Int key
          :: List.init p.field_count (fun _ -> Storage.Value.Text pad));
    }

let scan_stmt p rng =
  let start = zipf_key p rng in
  let len = 1 + Util.Rng.int rng p.scan_length in
  Storage.Query.Range
    {
      table;
      lo = Some [| Storage.Value.Int start |];
      hi = Some [| Storage.Value.Int (start + len) |];
      where = None;
      limit = Some len;
    }

let request p mix rng =
  let roll = Util.Rng.float rng 1.0 in
  let statements, profile =
    match mix with
    | A -> if roll < 0.5 then ([ read_stmt (zipf_key p rng) ], "read")
           else ([ update_stmt p rng (zipf_key p rng) ], "update")
    | B -> if roll < 0.95 then ([ read_stmt (zipf_key p rng) ], "read")
           else ([ update_stmt p rng (zipf_key p rng) ], "update")
    | C -> ([ read_stmt (zipf_key p rng) ], "read")
    | D -> if roll < 0.95 then ([ read_stmt (zipf_key p rng) ], "read")
           else ([ insert_stmt p rng ], "insert")
    | E -> if roll < 0.95 then ([ scan_stmt p rng ], "scan")
           else ([ insert_stmt p rng ], "insert")
    | F ->
      if roll < 0.5 then ([ read_stmt (zipf_key p rng) ], "read")
      else begin
        let key = zipf_key p rng in
        ([ read_stmt key; update_stmt p rng key ], "rmw")
      end
  in
  Core.Transaction.make ~profile:(mix_name mix ^ "-" ^ profile) statements

let workload p mix =
  { Core.Client.think_ms = Core.Client.no_think; next_request = request p mix }

type params = {
  warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
  initial_orders_per_district : int;
}

let default =
  {
    warehouses = 4;
    districts_per_warehouse = 10;
    customers_per_district = 300;
    items = 1_000;
    initial_orders_per_district = 100;
  }

type tx = New_order | Payment | Order_status | Delivery | Stock_level

let tx_name = function
  | New_order -> "new_order"
  | Payment -> "payment"
  | Order_status -> "order_status"
  | Delivery -> "delivery"
  | Stock_level -> "stock_level"

let is_update_tx = function
  | New_order | Payment | Delivery -> true
  | Order_status | Stock_level -> false

let weights =
  [ (New_order, 45.0); (Payment, 43.0); (Order_status, 4.0); (Delivery, 4.0);
    (Stock_level, 4.0) ]

(* --- Schema --- *)

let vi x = Storage.Value.Int x
let vf x = Storage.Value.Float x
let vt x = Storage.Value.Text x

let warehouse_schema =
  Storage.Schema.make ~name:"warehouse"
    ~columns:
      [ ("w_id", Storage.Value.Tint); ("w_name", Storage.Value.Ttext);
        ("w_tax", Storage.Value.Tfloat); ("w_ytd", Storage.Value.Tfloat) ]
    ~key:[ "w_id" ] ()

let district_schema =
  Storage.Schema.make ~name:"district"
    ~columns:
      [ ("d_w_id", Storage.Value.Tint); ("d_id", Storage.Value.Tint);
        ("d_name", Storage.Value.Ttext); ("d_tax", Storage.Value.Tfloat);
        ("d_ytd", Storage.Value.Tfloat); ("d_next_o_id", Storage.Value.Tint) ]
    ~key:[ "d_w_id"; "d_id" ] ()

let customer_schema =
  Storage.Schema.make ~name:"tpcc_customer"
    ~columns:
      [ ("c_w_id", Storage.Value.Tint); ("c_d_id", Storage.Value.Tint);
        ("c_id", Storage.Value.Tint); ("c_name", Storage.Value.Ttext);
        ("c_balance", Storage.Value.Tfloat); ("c_ytd_payment", Storage.Value.Tfloat);
        ("c_payment_cnt", Storage.Value.Tint); ("c_delivery_cnt", Storage.Value.Tint) ]
    ~key:[ "c_w_id"; "c_d_id"; "c_id" ] ()

let history_schema =
  Storage.Schema.make ~name:"history"
    ~columns:
      [ ("h_id", Storage.Value.Tint); ("h_c_w_id", Storage.Value.Tint);
        ("h_c_d_id", Storage.Value.Tint); ("h_c_id", Storage.Value.Tint);
        ("h_amount", Storage.Value.Tfloat); ("h_date", Storage.Value.Tint) ]
    ~key:[ "h_id" ] ()

let new_order_schema =
  Storage.Schema.make ~name:"new_order"
    ~columns:
      [ ("no_w_id", Storage.Value.Tint); ("no_d_id", Storage.Value.Tint);
        ("no_o_id", Storage.Value.Tint) ]
    ~key:[ "no_w_id"; "no_d_id"; "no_o_id" ] ()

let orders_schema =
  Storage.Schema.make ~name:"tpcc_orders"
    ~columns:
      [ ("o_w_id", Storage.Value.Tint); ("o_d_id", Storage.Value.Tint);
        ("o_id", Storage.Value.Tint); ("o_c_id", Storage.Value.Tint);
        ("o_entry_d", Storage.Value.Tint); ("o_carrier_id", Storage.Value.Tint);
        ("o_ol_cnt", Storage.Value.Tint) ]
    ~nullable:[ "o_carrier_id" ] ~indexes:[ "o_c_id" ] ~key:[ "o_w_id"; "o_d_id"; "o_id" ]
    ()

let order_line_schema =
  Storage.Schema.make ~name:"tpcc_order_line"
    ~columns:
      [ ("ol_w_id", Storage.Value.Tint); ("ol_d_id", Storage.Value.Tint);
        ("ol_o_id", Storage.Value.Tint); ("ol_number", Storage.Value.Tint);
        ("ol_i_id", Storage.Value.Tint); ("ol_qty", Storage.Value.Tint);
        ("ol_amount", Storage.Value.Tfloat); ("ol_delivery_d", Storage.Value.Tint) ]
    ~nullable:[ "ol_delivery_d" ]
    ~key:[ "ol_w_id"; "ol_d_id"; "ol_o_id"; "ol_number" ] ()

let item_schema =
  Storage.Schema.make ~name:"tpcc_item"
    ~columns:
      [ ("i_id", Storage.Value.Tint); ("i_name", Storage.Value.Ttext);
        ("i_price", Storage.Value.Tfloat) ]
    ~key:[ "i_id" ] ()

let stock_schema =
  Storage.Schema.make ~name:"stock"
    ~columns:
      [ ("s_w_id", Storage.Value.Tint); ("s_i_id", Storage.Value.Tint);
        ("s_quantity", Storage.Value.Tint); ("s_ytd", Storage.Value.Tfloat);
        ("s_order_cnt", Storage.Value.Tint) ]
    ~key:[ "s_w_id"; "s_i_id" ] ()

let schemas =
  [ warehouse_schema; district_schema; customer_schema; history_schema; new_order_schema;
    orders_schema; order_line_schema; item_schema; stock_schema ]

(* --- Population --- *)

let lines_per_order = 5

let load p db =
  Storage.Database.load db "warehouse"
    (List.init p.warehouses (fun w ->
         [| vi w; vt (Printf.sprintf "W%d" w); vf 0.07; vf 0.0 |]));
  let per_district f =
    List.concat_map
      (fun w -> List.init p.districts_per_warehouse (fun d -> f w d))
      (List.init p.warehouses (fun w -> w))
  in
  Storage.Database.load db "district"
    (per_district (fun w d ->
         [|
           vi w; vi d; vt (Printf.sprintf "D%d-%d" w d); vf 0.08; vf 0.0;
           vi p.initial_orders_per_district;
         |]));
  Storage.Database.load db "tpcc_customer"
    (List.concat
       (per_district (fun w d ->
            [
              List.init p.customers_per_district (fun c ->
                  [|
                    vi w; vi d; vi c; vt (Printf.sprintf "Customer%d" c); vf (-10.0);
                    vf 10.0; vi 1; vi 0;
                  |]);
            ])
       |> List.map List.concat));
  Storage.Database.load db "tpcc_item"
    (List.init p.items (fun i ->
         [| vi i; vt (Printf.sprintf "Item%d" i); vf (1.0 +. float_of_int (i mod 100)) |]));
  Storage.Database.load db "stock"
    (List.concat_map
       (fun w -> List.init p.items (fun i -> [| vi w; vi i; vi 91; vf 0.0; vi 0 |]))
       (List.init p.warehouses (fun w -> w)));
  (* Initial orders: the most recent 30% are undelivered (rows in
     new_order, NULL carrier). *)
  let undelivered_from = p.initial_orders_per_district * 7 / 10 in
  Storage.Database.load db "tpcc_orders"
    (per_district (fun w d ->
         List.init p.initial_orders_per_district (fun o ->
             let delivered = o < undelivered_from in
             [|
               vi w; vi d; vi o; vi (o mod p.customers_per_district); vi (20260000 + o);
               (if delivered then vi (o mod 10) else Storage.Value.Null);
               vi lines_per_order;
             |]))
     |> List.concat);
  Storage.Database.load db "tpcc_order_line"
    (per_district (fun w d ->
         List.concat
           (List.init p.initial_orders_per_district (fun o ->
                let delivered = o < undelivered_from in
                List.init lines_per_order (fun l ->
                    [|
                      vi w; vi d; vi o; vi l; vi (((o * 13) + l) mod p.items);
                      vi (1 + (l mod 5)); vf 9.99;
                      (if delivered then vi (20260000 + o) else Storage.Value.Null);
                    |]))))
     |> List.concat);
  Storage.Database.load db "new_order"
    (per_district (fun w d ->
         List.filter_map
           (fun o -> if o >= undelivered_from then Some [| vi w; vi d; vi o |] else None)
           (List.init p.initial_orders_per_district (fun o -> o)))
     |> List.concat);
  Storage.Database.load db "history"
    (per_district (fun w d ->
         List.init p.customers_per_district (fun c ->
             [| vi (((w * 1000) + d) * 1000 + c); vi w; vi d; vi c; vf 10.0; vi 20260000 |]))
     |> List.concat)

(* --- Transactions --- *)


let fresh_id rng = 1 + Util.Rng.int rng 0x3FFFFFFF

let statements_of p tx rng =
  let w = Util.Rng.int rng p.warehouses in
  let d = Util.Rng.int rng p.districts_per_warehouse in
  let c = Util.Rng.int rng p.customers_per_district in
  match tx with
  | New_order ->
    let o_id = fresh_id rng in
    let ol_cnt = 5 + Util.Rng.int rng 11 in
    let items = List.init ol_cnt (fun _ -> Util.Rng.int rng p.items) in
    [
      Storage.Query.Get { table = "warehouse"; key = [| vi w |] };
      Storage.Query.Update_key
        {
          table = "district";
          key = [| vi w; vi d |];
          set = [ ("d_next_o_id", Storage.Expr.(col district_schema "d_next_o_id" + i 1)) ];
        };
      Storage.Query.Get { table = "tpcc_customer"; key = [| vi w; vi d; vi c |] };
      Storage.Query.Insert
        {
          table = "tpcc_orders";
          row =
            [| vi w; vi d; vi o_id; vi c; vi 20260701; Storage.Value.Null; vi ol_cnt |];
        };
      Storage.Query.Insert { table = "new_order"; row = [| vi w; vi d; vi o_id |] };
    ]
    @ List.concat
        (List.mapi
           (fun l item ->
             let qty = 1 + Util.Rng.int rng 10 in
             [
               Storage.Query.Get { table = "tpcc_item"; key = [| vi item |] };
               Storage.Query.Update_key
                 {
                   table = "stock";
                   key = [| vi w; vi item |];
                   set =
                     [
                       ("s_quantity", Storage.Expr.(col stock_schema "s_quantity" - i qty));
                       ("s_ytd", Storage.Expr.(col stock_schema "s_ytd" + f (float_of_int qty)));
                       ("s_order_cnt", Storage.Expr.(col stock_schema "s_order_cnt" + i 1));
                     ];
                 };
               Storage.Query.Insert
                 {
                   table = "tpcc_order_line";
                   row =
                     [|
                       vi w; vi d; vi o_id; vi l; vi item; vi qty; vf 9.99;
                       Storage.Value.Null;
                     |];
                 };
             ])
           items)
  | Payment ->
    let amount = 1.0 +. Util.Rng.float rng 5000.0 in
    [
      Storage.Query.Update_key
        {
          table = "warehouse";
          key = [| vi w |];
          set = [ ("w_ytd", Storage.Expr.(col warehouse_schema "w_ytd" + f amount)) ];
        };
      Storage.Query.Update_key
        {
          table = "district";
          key = [| vi w; vi d |];
          set = [ ("d_ytd", Storage.Expr.(col district_schema "d_ytd" + f amount)) ];
        };
      Storage.Query.Update_key
        {
          table = "tpcc_customer";
          key = [| vi w; vi d; vi c |];
          set =
            [
              ("c_balance", Storage.Expr.(col customer_schema "c_balance" - f amount));
              ("c_ytd_payment", Storage.Expr.(col customer_schema "c_ytd_payment" + f amount));
              ("c_payment_cnt", Storage.Expr.(col customer_schema "c_payment_cnt" + i 1));
            ];
        };
      Storage.Query.Insert
        {
          table = "history";
          row = [| vi (fresh_id rng); vi w; vi d; vi c; vf amount; vi 20260701 |];
        };
    ]
  | Order_status ->
    [
      Storage.Query.Get { table = "tpcc_customer"; key = [| vi w; vi d; vi c |] };
      Storage.Query.Select
        {
          table = "tpcc_orders";
          where =
            Some
              Storage.Expr.(
                col orders_schema "o_c_id" = i c
                && col orders_schema "o_w_id" = i w
                && col orders_schema "o_d_id" = i d);
          limit = Some 1;
        };
      Storage.Query.Range
        {
          table = "tpcc_order_line";
          lo = Some [| vi w; vi d; vi (Util.Rng.int rng p.initial_orders_per_district) |];
          hi = None;
          where = None;
          limit = Some lines_per_order;
        };
    ]
  | Delivery ->
    let o = Util.Rng.int rng p.initial_orders_per_district in
    [
      Storage.Query.Delete_key { table = "new_order"; key = [| vi w; vi d; vi o |] };
      Storage.Query.Update_key
        {
          table = "tpcc_orders";
          key = [| vi w; vi d; vi o |];
          set = [ ("o_carrier_id", Storage.Expr.i (Util.Rng.int rng 10)) ];
        };
    ]
    @ List.init lines_per_order (fun l ->
          Storage.Query.Update_key
            {
              table = "tpcc_order_line";
              key = [| vi w; vi d; vi o; vi l |];
              set = [ ("ol_delivery_d", Storage.Expr.i 20260701) ];
            })
    @ [
        Storage.Query.Update_key
          {
            table = "tpcc_customer";
            key = [| vi w; vi d; vi c |];
            set =
              [
                ("c_balance", Storage.Expr.(col customer_schema "c_balance" + f 9.99));
                ("c_delivery_cnt",
                 Storage.Expr.(col customer_schema "c_delivery_cnt" + i 1));
              ];
          };
      ]
  | Stock_level ->
    let recent = max 0 (p.initial_orders_per_district - 20) in
    Storage.Query.Range
      {
        table = "tpcc_order_line";
        lo = Some [| vi w; vi d; vi recent |];
        hi = Some [| vi w; vi d; vi p.initial_orders_per_district; vi 99 |];
        where = None;
        limit = Some 100;
      }
    :: List.init 10 (fun _ ->
           Storage.Query.Get
             { table = "stock"; key = [| vi w; vi (Util.Rng.int rng p.items) |] })

let request p tx rng =
  Core.Transaction.make ~profile:(tx_name tx) (statements_of p tx rng)

let sample_tx rng =
  let total = List.fold_left (fun acc (_, x) -> acc +. x) 0.0 weights in
  let roll = Util.Rng.float rng total in
  let rec pick acc = function
    | [] -> fst (List.hd weights)
    | (tx, x) :: rest -> if roll < acc +. x then tx else pick (acc +. x) rest
  in
  pick 0.0 weights

let workload p =
  {
    Core.Client.think_ms = Core.Client.no_think;
    next_request = (fun rng -> request p (sample_tx rng) rng);
  }

(* Item-granularity profiles for the static SI analysis: one logical item
   per (table, role) the transaction touches. *)
let profiles =
  [
    Check.Si_analysis.profile ~name:"new_order"
      ~reads:[ "warehouse.tax"; "customer.info"; "item.price" ]
      ~writes:[ "district.next_o_id"; "stock.qty"; "orders.row"; "order_line.row";
                "new_order.row" ]
      ();
    Check.Si_analysis.profile ~name:"payment"
      ~writes:[ "warehouse.ytd"; "district.ytd"; "customer.balance"; "history.row" ]
      ();
    Check.Si_analysis.profile ~name:"order_status"
      ~reads:[ "customer.info"; "orders.row"; "order_line.row" ]
      ();
    Check.Si_analysis.profile ~name:"delivery"
      ~writes:[ "new_order.row"; "orders.row"; "order_line.row"; "customer.balance" ]
      ();
    Check.Si_analysis.profile ~name:"stock_level"
      ~reads:[ "order_line.row"; "stock.qty" ]
      ();
  ]

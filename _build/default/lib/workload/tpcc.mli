(** TPC-C workload model (extension).

    The paper cites TPC-C alongside TPC-W as a workload that runs
    serializably under SI/GSI (§IV). This module provides the standard
    9-table schema, a scaled-down deterministic population, and the five
    transactions with the spec's mix (new-order 45%, payment 43%,
    order-status 4%, delivery 4%, stock-level 4%).

    Deviations from the spec, forced by the prepared-statement model
    (statement parameters are bound before execution, results cannot
    feed later statements) and documented here:
    - order ids are random surrogates rather than [d_next_o_id] reads,
      but new-order still increments the district's hot counter, so the
      spec's per-district write contention is preserved;
    - customer lookups are by id (the spec's 60% by-last-name path needs
      result-dependent control flow);
    - delivery processes one randomly chosen order per district instead
      of the oldest undelivered one. *)

type params = {
  warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
  initial_orders_per_district : int;
}

val default : params
(** 4 warehouses x 10 districts, 300 customers and 100 initial orders
    per district, 1,000 items (scaled from the spec's 3,000 / 100,000). *)

type tx = New_order | Payment | Order_status | Delivery | Stock_level

val tx_name : tx -> string

val is_update_tx : tx -> bool

val weights : (tx * float) list
(** The spec mix; sums to 100. *)

val schemas : Storage.Schema.t list

val load : params -> Storage.Database.t -> unit

val request : params -> tx -> Util.Rng.t -> Core.Transaction.request

val sample_tx : Util.Rng.t -> tx

val workload : params -> Core.Client.workload
(** Closed loop, zero think time (the spec's keying/think times scale
    out the same way as TPC-W's; use {!Core.Client.exp_think} wrappers
    for open-loop variants). *)

val profiles : Check.Si_analysis.profile list
(** Item-granularity transaction profiles for the static SI
    serializability analysis. *)
